//! The [`Service`]: submission queue, deterministic batch scheduler,
//! duplicate coalescing, and cache-backed resolution.

use crate::cache::{CacheKey, Primed, ResultCache};
use crate::pool::CliquePool;
use crate::query::{ComputeKind, Query, Response};
use crate::registry::{GraphId, GraphRegistry};
use cc_apsp::apsp_exact;
use cc_clique::{Clique, CliqueConfig, Mode};
use cc_graph::Graph;
use cc_subgraph::{count_triangles_auto, detect_4cycle, directed_girth, girth, GirthConfig};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Pool instances a batch fans over when [`ServiceMode::Batch`] leaves the
/// count unspecified (`instances: 0`). Two is the smallest count that
/// exercises the fan-out path.
pub const DEFAULT_BATCH_INSTANCES: usize = 2;

/// Default cap on retained unredeemed outcomes (see
/// [`ServiceConfig::max_unredeemed`]).
pub const DEFAULT_MAX_UNREDEEMED: usize = 1024;

/// Default cap on primed computations the result cache retains (see
/// [`ServiceConfig::max_cached`]).
pub const DEFAULT_MAX_CACHED: usize = 4096;

/// Default cap on the result cache's approximate byte footprint (see
/// [`ServiceConfig::max_cache_bytes`]): 64 MiB.
pub const DEFAULT_MAX_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// How the service schedules submitted queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Every submission is computed immediately at [`Service::submit`]
    /// (still cache-backed); [`Service::drain`] is a no-op. The one-shot
    /// calling convention, kept for ablation against the batch scheduler.
    Direct,
    /// Submissions queue until [`Service::drain`], which processes them as
    /// one batch: seeded deterministic order, duplicate queries coalesced
    /// into one computation, independent computations fanned over warm
    /// pool instances on the configured executor.
    Batch {
        /// Pool instances a batch fans over; `0` means
        /// [`DEFAULT_BATCH_INSTANCES`].
        instances: usize,
    },
}

impl Default for ServiceMode {
    fn default() -> Self {
        Self::from_env_or(ServiceMode::Batch { instances: 0 })
    }
}

impl ServiceMode {
    /// Parses a scheduler spec: `direct`, or `batch` optionally suffixed
    /// `:<instances>` as in `batch:4`. `None` for unknown names or
    /// malformed suffixes — `batch:banana` must not silently mean "default
    /// instances" (the same contract as `CC_EXECUTOR` / `CC_TRANSPORT`).
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let (name, instances) = match raw.split_once(':') {
            Some((name, k)) => (name, Some(k.parse::<usize>().ok()?)),
            None => (raw, None),
        };
        match (name.to_ascii_lowercase().as_str(), instances) {
            ("direct" | "oneshot", None) => Some(ServiceMode::Direct),
            ("batch" | "batched", k) => Some(ServiceMode::Batch {
                instances: k.unwrap_or(0),
            }),
            _ => None,
        }
    }

    /// Reads the scheduler from the `CC_SERVICE` environment variable,
    /// falling back to `fallback` when unset — mirroring `CC_EXECUTOR` and
    /// `CC_TRANSPORT`, so CI can force every default-configured service in
    /// the process through the batch scheduler. A malformed value is
    /// reported once per process (the shared
    /// [`cc_runtime::env_config`] contract) before falling back.
    #[must_use]
    pub fn from_env_or(fallback: ServiceMode) -> Self {
        cc_runtime::env_config::from_env_or(
            "cc-service",
            "CC_SERVICE",
            "direct or batch[:instances]",
            fallback,
            Self::parse,
        )
    }

    /// The fan-out width this mode gives a batch.
    fn instances(self) -> usize {
        match self {
            ServiceMode::Direct => 1,
            ServiceMode::Batch { instances: 0 } => DEFAULT_BATCH_INSTANCES,
            ServiceMode::Batch { instances } => instances,
        }
    }
}

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Configuration every pooled clique instance is built with. Must be
    /// [`Mode::Unicast`] (the algorithm layer's point-to-point primitives
    /// are unavailable in the broadcast clique).
    pub clique: CliqueConfig,
    /// Scheduler (see [`ServiceMode`]); the default consults `CC_SERVICE`.
    pub mode: ServiceMode,
    /// Seed of the deterministic batch drain order.
    pub batch_seed: u64,
    /// Parameters for [`Query::GirthBound`] on undirected graphs.
    pub girth: GirthConfig,
    /// Cap on outcomes retained for unredeemed tickets. A caller that
    /// submits without ever calling [`Service::take`] used to grow the
    /// outcome map without bound; past this cap the **oldest** unredeemed
    /// outcomes are dropped at each drain (warned once per service, counted
    /// in [`ServiceStats::outcomes_evicted`]). `0` means
    /// [`DEFAULT_MAX_UNREDEEMED`].
    pub max_unredeemed: usize,
    /// Cap on primed computations the result cache retains. Past it, each
    /// drain evicts the **oldest-primed** entries (a deterministic order —
    /// priming follows the seeded batch drain), warns once per service, and
    /// counts every drop in [`ServiceStats::results_evicted`]. An evicted
    /// computation is simply re-primed on its next submission — answers
    /// never change, only whether a replay is free. `0` means
    /// [`DEFAULT_MAX_CACHED`].
    pub max_cached: usize,
    /// Companion byte cap on the cache's approximate footprint
    /// ([`Service::cache_bytes`]); enforced with the same oldest-first
    /// policy. The newest entry always survives even when it alone exceeds
    /// the cap, so the hot key keeps replaying for free. `0` means
    /// [`DEFAULT_MAX_CACHE_BYTES`].
    pub max_cache_bytes: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            clique: CliqueConfig::default(),
            mode: ServiceMode::default(),
            batch_seed: 0x5e71_1ce5,
            girth: GirthConfig::default(),
            max_unredeemed: DEFAULT_MAX_UNREDEEMED,
            max_cached: DEFAULT_MAX_CACHED,
            max_cache_bytes: DEFAULT_MAX_CACHE_BYTES,
        }
    }
}

impl ServiceConfig {
    /// Digest of the knobs that can move a computation's answer or
    /// accounting: the relay seed and policy, and the girth parameters.
    /// Executor and transport are excluded on purpose — the determinism
    /// contract makes them unable to change results, so cached entries
    /// stay valid across backends.
    fn knobs(&self) -> u64 {
        let mut h = splitmix(self.clique.route_seed);
        h = splitmix(h ^ self.clique.relay_policy as u64);
        h = splitmix(h ^ self.girth.ell as u64);
        h = splitmix(h ^ self.girth.trials as u64);
        splitmix(h ^ self.girth.seed)
    }
}

/// Handle to one submitted query; redeem it with [`Service::take`] after
/// the batch containing it has drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(u64);

/// A completed query: the answer, the simulated cost of the run that
/// *primed* it, and whether this particular submission was served from
/// cache (i.e. ran zero additional simulated rounds).
///
/// `rounds`/`words` are the priming run's accounting whether or not this
/// submission did the priming — that is what makes a cached replay
/// bit-identical to the fresh run, which the determinism suite pins.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The answer.
    pub response: Response,
    /// Rounds the priming simulation executed.
    pub rounds: u64,
    /// Words the priming simulation moved.
    pub words: u64,
    /// `true` when this submission ran no new simulation: it was answered
    /// by an earlier batch's cache entry, coalesced onto another in-flight
    /// submission of the same computation, or memoized out of a cached
    /// APSP table (point-to-point distances).
    pub cached: bool,
}

/// Service-lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries submitted.
    pub queries: u64,
    /// Batches drained (direct-mode submissions count one each).
    pub batches: u64,
    /// Submissions answered from a previous batch's cache entry.
    pub cache_hits: u64,
    /// Submissions coalesced onto an in-flight duplicate within a batch.
    pub coalesced: u64,
    /// Distributed computations actually run on a clique.
    pub computations: u64,
    /// Total rounds those computations executed.
    pub simulated_rounds: u64,
    /// Total words those computations moved.
    pub simulated_words: u64,
    /// Primed computations currently cached (updated at each drain; the
    /// growth gauge for the ROADMAP's unbounded-cache item).
    pub cache_entries: u64,
    /// Approximate bytes those cached computations hold.
    pub cache_bytes: u64,
    /// Unredeemed outcomes dropped by the retention cap (see
    /// [`ServiceConfig::max_unredeemed`]).
    pub outcomes_evicted: u64,
    /// Primed computations dropped by the cache caps (see
    /// [`ServiceConfig::max_cached`] / [`ServiceConfig::max_cache_bytes`]).
    pub results_evicted: u64,
}

/// One queued submission.
#[derive(Debug, Clone, Copy)]
struct Submission {
    ticket: Ticket,
    graph: GraphId,
    query: Query,
}

/// One coalesced unit of distributed work within a draining batch.
struct Job {
    key: CacheKey,
    graph: Arc<Graph>,
    kind: ComputeKind,
}

/// What one fan-out slot returns: its jobs' primed results (by job index)
/// and its checked-out cliques, ready for checkin.
type SlotOutput = (Vec<(usize, Primed)>, BTreeMap<usize, Clique>);

/// The batched query-serving front door over the whole algorithm stack.
///
/// Lifecycle: [`Service::register`] a graph once (content-fingerprinted,
/// deduplicated, `Arc`-shared) → [`Service::submit`] typed queries against
/// it → [`Service::drain`] the batch (seeded order, duplicates coalesced,
/// independent computations fanned over warm pool instances) →
/// [`Service::take`] each ticket's [`QueryOutcome`]. Repeats of a primed
/// computation are served from the fingerprint-keyed cache with zero
/// additional simulated rounds and bit-identical answers and accounting.
///
/// See the crate docs for the full architecture.
#[derive(Debug)]
pub struct Service {
    cfg: ServiceConfig,
    knobs: u64,
    registry: GraphRegistry,
    pool: CliquePool,
    cache: ResultCache,
    queue: Vec<Submission>,
    ready: BTreeMap<u64, QueryOutcome>,
    next_ticket: u64,
    stats: ServiceStats,
    /// The outcome retention cap's one warning per service lifetime has
    /// fired.
    evict_warned: bool,
    /// The cache caps' one warning per service lifetime has fired.
    cache_evict_warned: bool,
}

impl Default for Service {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl Service {
    /// Creates a service; the pool's shared executor is built here, once.
    ///
    /// # Panics
    ///
    /// Panics if the clique configuration is [`Mode::Broadcast`]: the
    /// algorithm layer needs the unicast primitives.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        assert!(
            cfg.clique.mode == Mode::Unicast,
            "cc-service needs the unicast congested clique (Mode::Unicast)"
        );
        let knobs = cfg.knobs();
        let pool = CliquePool::new(cfg.clique.clone());
        Self {
            cfg,
            knobs,
            registry: GraphRegistry::new(),
            pool,
            cache: ResultCache::default(),
            queue: Vec::new(),
            ready: BTreeMap::new(),
            next_ticket: 0,
            stats: ServiceStats::default(),
            evict_warned: false,
            cache_evict_warned: false,
        }
    }

    /// Registers a graph (see [`GraphRegistry::register`]).
    pub fn register(&mut self, graph: Graph) -> GraphId {
        self.registry.register(Arc::new(graph))
    }

    /// Registers an already-shared graph without copying it.
    pub fn register_shared(&mut self, graph: Arc<Graph>) -> GraphId {
        self.registry.register(graph)
    }

    /// Submits one query. In [`ServiceMode::Batch`] the query waits for
    /// the next [`Service::drain`]; in [`ServiceMode::Direct`] it completes
    /// before `submit` returns. Either way the ticket is redeemed with
    /// [`Service::take`].
    ///
    /// # Panics
    ///
    /// Panics on an unregistered id, on [`Query::Distance`] endpoints out
    /// of the graph's node range, and on [`Query::SubgraphFlag`] against a
    /// directed graph (the Theorem 4 detector is undirected-only).
    pub fn submit(&mut self, graph: GraphId, query: Query) -> Ticket {
        let g = self.registry.graph(graph);
        if let Query::Distance { s, t } = query {
            assert!(
                s < g.n() && t < g.n(),
                "distance endpoints ({s},{t}) out of range (n={})",
                g.n()
            );
        }
        if query == Query::SubgraphFlag {
            assert!(
                !g.is_directed(),
                "SubgraphFlag (Theorem 4) applies to undirected graphs"
            );
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.stats.queries += 1;
        self.queue.push(Submission {
            ticket,
            graph,
            query,
        });
        if self.cfg.mode == ServiceMode::Direct {
            self.drain_queue();
        }
        ticket
    }

    /// Drains the submission queue as one batch; returns how many
    /// submissions completed. A no-op when nothing is queued.
    pub fn drain(&mut self) -> usize {
        self.drain_queue()
    }

    /// Removes and returns a completed query's outcome; `None` while the
    /// ticket's batch has not drained, for an already-taken ticket, or for
    /// a ticket whose outcome the retention cap dropped.
    ///
    /// Outcomes are retained until taken, up to
    /// [`ServiceConfig::max_unredeemed`]: past the cap each drain drops
    /// the oldest unredeemed outcomes, so a fire-and-forget caller bounds
    /// the service's memory instead of leaking it. Redeem promptly (or use
    /// [`Service::query`], which always takes) to never hit the cap.
    pub fn take(&mut self, ticket: Ticket) -> Option<QueryOutcome> {
        self.ready.remove(&ticket.0)
    }

    /// Submit-and-complete convenience: drains immediately and returns the
    /// outcome.
    pub fn query(&mut self, graph: GraphId, query: Query) -> QueryOutcome {
        let ticket = self.submit(graph, query);
        self.drain_queue();
        self.take(ticket)
            .expect("drained batch resolves its tickets")
    }

    /// Queries waiting for the next drain.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Service-lifetime counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The graph registry.
    #[must_use]
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// The warm clique pool.
    #[must_use]
    pub fn pool(&self) -> &CliquePool {
        &self.pool
    }

    /// Primed computations currently cached.
    #[must_use]
    pub fn cached_computations(&self) -> usize {
        self.cache.len()
    }

    /// Approximate bytes the cache holds right now (entry payloads plus
    /// keys and cost counters). Bounded by
    /// [`ServiceConfig::max_cache_bytes`] (and
    /// [`ServiceConfig::max_cached`] on entry count): each drain evicts the
    /// oldest primed computations past the caps.
    #[must_use]
    pub fn cache_bytes(&self) -> u64 {
        self.cache.approx_bytes()
    }

    /// Outcomes currently retained for unredeemed tickets.
    #[must_use]
    pub fn retained_outcomes(&self) -> usize {
        self.ready.len()
    }

    /// Approximate bytes those unredeemed outcomes hold (response payloads
    /// plus the per-outcome bookkeeping). Bounded by the retention cap —
    /// the regression tests pin that a submit-heavy, never-taking caller
    /// sees this plateau instead of grow.
    #[must_use]
    pub fn unredeemed_bytes(&self) -> u64 {
        let per_outcome = std::mem::size_of::<u64>() + std::mem::size_of::<QueryOutcome>();
        self.ready
            .values()
            .map(|o| per_outcome as u64 + o.response.approx_bytes())
            .sum()
    }

    /// Drops every cached computation (the warm pool is untouched). The
    /// next submission of each query re-primes it; useful for memory
    /// pressure and for benchmarks isolating pool warmth from caching.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The canonical cache key of a query against a registered graph.
    fn key_for(&self, graph: GraphId, query: Query) -> CacheKey {
        CacheKey {
            fingerprint: self.registry.fingerprint(graph),
            kind: query.compute_kind(),
            knobs: self.knobs,
        }
    }

    fn drain_queue(&mut self) -> usize {
        let submissions = std::mem::take(&mut self.queue);
        if submissions.is_empty() {
            return 0;
        }
        self.stats.batches += 1;
        let tel = cc_telemetry::global();
        // Observer-only: the clock is read only when summary tracing is on,
        // and every emission below happens after the batch's results are
        // already fixed.
        let drain_start = tel
            .enabled(cc_telemetry::TraceLevel::Summary)
            .then(std::time::Instant::now);

        // Seeded deterministic drain order: the queue is a permutation of
        // submission order, fixed by the batch seed — which submission of a
        // duplicate set primes the computation never depends on caller
        // timing.
        let mut order: Vec<usize> = (0..submissions.len()).collect();
        order.sort_by_key(|&i| (splitmix(self.cfg.batch_seed ^ i as u64), i));

        // Coalesce: walk the batch in drain order, creating one job per
        // missing cache key; later submissions of the same key (and all
        // submissions of already-primed keys) run nothing.
        let mut jobs: Vec<Job> = Vec::new();
        let mut job_of_key: BTreeMap<CacheKey, usize> = BTreeMap::new();
        for &i in &order {
            let sub = submissions[i];
            let key = self.key_for(sub.graph, sub.query);
            if self.cache.get(&key).is_some() {
                self.stats.cache_hits += 1;
                continue;
            }
            if job_of_key.contains_key(&key) {
                self.stats.coalesced += 1;
                continue;
            }
            job_of_key.insert(key, jobs.len());
            jobs.push(Job {
                key,
                graph: Arc::clone(self.registry.graph(sub.graph)),
                kind: key.kind,
            });
        }

        // Fan the coalesced jobs over warm pool instances on the shared
        // executor. Each slot owns its checked-out cliques (one per
        // distinct n it serves) behind an uncontended per-slot mutex; jobs
        // are assigned round-robin and merged back by job index, so the
        // outcome is independent of which thread ran which slot — each job
        // runs on its own reset instance, and reset instances replay fresh
        // ones bit-for-bit.
        if !jobs.is_empty() {
            let slots = self.cfg.mode.instances().clamp(1, jobs.len());
            let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); slots];
            for (j, _) in jobs.iter().enumerate() {
                assignments[j % slots].push(j);
            }
            let mut slot_cliques: Vec<BTreeMap<usize, Clique>> = Vec::with_capacity(slots);
            for mine in &assignments {
                let mut cliques = BTreeMap::new();
                for &j in mine {
                    let n = jobs[j].graph.n();
                    cliques.entry(n).or_insert_with(|| self.pool.checkout(n));
                }
                slot_cliques.push(cliques);
            }
            let girth_cfg = self.cfg.girth;
            let work: Vec<Mutex<Option<BTreeMap<usize, Clique>>>> = slot_cliques
                .into_iter()
                .map(|c| Mutex::new(Some(c)))
                .collect();
            // The slot map's pieces are few but each is an entire
            // algorithm run, so the executor's piece-count cutover (sized
            // for fine-grained node-local loops) is disabled for this one
            // dispatch; nested maps inside the algorithms keep the
            // configured cutover through their cliques' own handles.
            let exec = self.pool.executor().with_cutover_override(0);
            let jobs_ref = &jobs;
            let assignments_ref = &assignments;
            let slot_results: Vec<SlotOutput> = exec.map(slots, |slot| {
                let mut cliques = work[slot]
                    .lock()
                    .expect("slot mutex")
                    .take()
                    .expect("each slot taken once");
                let mut results = Vec::with_capacity(assignments_ref[slot].len());
                for &j in &assignments_ref[slot] {
                    let job = &jobs_ref[j];
                    let clique = cliques
                        .get_mut(&job.graph.n())
                        .expect("slot pre-checked-out this size");
                    results.push((j, run_computation(clique, &job.graph, job.kind, girth_cfg)));
                }
                (results, cliques)
            });
            for (results, cliques) in slot_results {
                for (j, primed) in results {
                    self.stats.computations += 1;
                    self.stats.simulated_rounds += primed.rounds;
                    self.stats.simulated_words += primed.words;
                    self.cache.insert(jobs[j].key, primed);
                }
                for (_, clique) in cliques {
                    self.pool.checkin(clique);
                }
            }
        }

        // Resolve every submission from the (now fully primed) cache. A
        // submission is "cached" when it ran no new simulation: everything
        // except each job's priming submission.
        let mut primer_spent: BTreeMap<CacheKey, bool> = BTreeMap::new();
        let done = submissions.len();
        for &i in &order {
            let sub = submissions[i];
            let key = self.key_for(sub.graph, sub.query);
            let primed = self.cache.get(&key).expect("batch primed every key");
            let cached = if job_of_key.contains_key(&key) {
                // First resolution of a freshly primed key in drain order
                // is the submission that paid for it.
                *primer_spent
                    .entry(key)
                    .and_modify(|spent| *spent = true)
                    .or_insert(false)
            } else {
                true
            };
            let response = match sub.query {
                Query::Distance { s, t } => {
                    let tables = primed
                        .response
                        .apsp()
                        .expect("distance queries prime APSP tables");
                    Response::Distance(tables.dist.row(s)[t])
                }
                _ => primed.response.clone(),
            };
            self.ready.insert(
                sub.ticket.0,
                QueryOutcome {
                    response,
                    rounds: primed.rounds,
                    words: primed.words,
                    cached,
                },
            );
        }

        self.enforce_outcome_cap();
        self.enforce_cache_cap();
        self.stats.cache_entries = self.cache.len() as u64;
        self.stats.cache_bytes = self.cache.approx_bytes();
        if let Some(start) = drain_start {
            self.emit_drain_gauges(done, start.elapsed().as_nanos() as u64);
        }
        done
    }

    /// Bounds the unredeemed-outcome map at
    /// [`ServiceConfig::max_unredeemed`] by dropping the oldest tickets'
    /// outcomes (lowest ticket numbers first — the entries a live caller is
    /// least likely to still redeem). Warns once per service lifetime and
    /// counts every drop, so a fire-and-forget workload is visible instead
    /// of a silent leak.
    fn enforce_outcome_cap(&mut self) {
        let cap = match self.cfg.max_unredeemed {
            0 => DEFAULT_MAX_UNREDEEMED,
            cap => cap,
        };
        if self.ready.len() <= cap {
            return;
        }
        let excess = self.ready.len() - cap;
        for _ in 0..excess {
            let oldest = *self.ready.keys().next().expect("map larger than cap");
            self.ready.remove(&oldest);
        }
        self.stats.outcomes_evicted += excess as u64;
        if !self.evict_warned {
            self.evict_warned = true;
            eprintln!(
                "cc-service: unredeemed-outcome cap ({cap}) reached; dropping the oldest \
                 tickets' outcomes (redeem with Service::take, or raise \
                 ServiceConfig::max_unredeemed; warned once)"
            );
        }
        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Summary, || {
            cc_telemetry::Event::Counter {
                name: "service_outcomes_evicted",
                delta: excess as u64,
            }
        });
    }

    /// Bounds the result cache at [`ServiceConfig::max_cached`] entries and
    /// [`ServiceConfig::max_cache_bytes`] approximate bytes by evicting the
    /// oldest-primed computations (a deterministic order, fixed by the
    /// seeded drain). Runs **after** the batch's submissions resolve, so
    /// every key the batch primed serves its own batch before it can be
    /// dropped. Warns once per service lifetime and counts every drop in
    /// [`ServiceStats::results_evicted`].
    fn enforce_cache_cap(&mut self) {
        let max_entries = match self.cfg.max_cached {
            0 => DEFAULT_MAX_CACHED,
            cap => cap,
        };
        let max_bytes = match self.cfg.max_cache_bytes {
            0 => DEFAULT_MAX_CACHE_BYTES,
            cap => cap,
        };
        let evicted = self.cache.enforce(max_entries, max_bytes);
        if evicted == 0 {
            return;
        }
        self.stats.results_evicted += evicted;
        if !self.cache_evict_warned {
            self.cache_evict_warned = true;
            eprintln!(
                "cc-service: result-cache cap ({max_entries} entries / {max_bytes} bytes) \
                 reached; evicting the oldest primed computations (raise \
                 ServiceConfig::max_cached / max_cache_bytes to keep more replays free; \
                 warned once)"
            );
        }
        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Summary, || {
            cc_telemetry::Event::Counter {
                name: "service_results_evicted",
                delta: evicted,
            }
        });
    }

    /// Emits the batch's service gauges at `CC_TRACE=summary` and above:
    /// cache occupancy, lifetime hit/coalescing ratios, warm-pool
    /// occupancy, and this drain's per-query latency.
    fn emit_drain_gauges(&self, drained: usize, drain_ns: u64) {
        let tel = cc_telemetry::global();
        let at = cc_telemetry::TraceLevel::Summary;
        let gauge = |name: &'static str, value: f64| {
            tel.emit(at, || cc_telemetry::Event::Gauge { name, value });
        };
        gauge("service_cache_entries", self.stats.cache_entries as f64);
        gauge("service_cache_bytes", self.stats.cache_bytes as f64);
        if self.stats.queries > 0 {
            gauge(
                "service_hit_rate",
                self.stats.cache_hits as f64 / self.stats.queries as f64,
            );
            gauge(
                "service_coalesce_ratio",
                self.stats.coalesced as f64 / self.stats.queries as f64,
            );
        }
        gauge("service_pool_built", self.pool.built() as f64);
        gauge("service_pool_reused", self.pool.reused() as f64);
        gauge("service_pool_idle", self.pool.idle_total() as f64);
        if drained > 0 {
            gauge(
                "service_batch_ns_per_query",
                drain_ns as f64 / drained as f64,
            );
        }
    }
}

/// Runs one computation on a reset pool instance, returning the answer and
/// the simulated cost.
fn run_computation(
    clique: &mut Clique,
    graph: &Graph,
    kind: ComputeKind,
    girth_cfg: GirthConfig,
) -> Primed {
    clique.reset();
    let response = match kind {
        ComputeKind::Triangles => Response::TriangleCount(count_triangles_auto(clique, graph)),
        ComputeKind::Apsp => Response::ApspTable(Arc::new(apsp_exact(clique, graph))),
        ComputeKind::Girth => Response::GirthBound(if graph.is_directed() {
            directed_girth(clique, graph)
        } else {
            girth(clique, graph, girth_cfg)
        }),
        ComputeKind::FourCycle => Response::SubgraphFlag(detect_4cycle(clique, graph)),
    };
    Primed {
        response,
        rounds: clique.rounds(),
        words: clique.stats().words(),
    }
}

/// SplitMix64 finaliser; the deterministic batch-order hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}
