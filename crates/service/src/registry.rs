//! The [`GraphRegistry`]: graphs registered once, content-fingerprinted,
//! shared by `Arc` with every query that touches them.

use cc_graph::Graph;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Opaque handle to a registered graph. Cheap to copy and to submit with
/// every query; the registry maps it back to the shared adjacency and the
/// content fingerprint that keys the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GraphId(usize);

impl GraphId {
    /// The registry slot index (diagnostics; not stable across services).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Graphs a service knows about: each registered **once**, deduplicated by
/// content fingerprint ([`Graph::fingerprint`]), adjacency shared via
/// [`Arc`] so a thousand in-flight queries on one graph cost one copy.
///
/// Registration is idempotent by content: registering a graph equal to an
/// already-registered one returns the existing [`GraphId`] — which is what
/// makes the fingerprint-keyed result cache coherent (two routes to the
/// same graph cannot create two cache universes).
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: Vec<Arc<Graph>>,
    fingerprints: Vec<u64>,
    by_fingerprint: BTreeMap<u64, usize>,
}

impl GraphRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a graph, taking shared ownership. Content-deduplicated:
    /// a graph equal to an existing entry returns that entry's id.
    ///
    /// # Panics
    ///
    /// Panics if `graph.n() < 2` (a congested clique needs two nodes), or
    /// on a fingerprint collision between *unequal* graphs — astronomically
    /// unlikely with a 64-bit content hash, and failing loudly beats
    /// silently serving one graph's cached answers for another.
    pub fn register(&mut self, graph: Arc<Graph>) -> GraphId {
        assert!(
            graph.n() >= 2,
            "a service graph needs at least 2 nodes (got {})",
            graph.n()
        );
        let fp = graph.fingerprint();
        if let Some(&slot) = self.by_fingerprint.get(&fp) {
            assert_eq!(
                *self.graphs[slot], *graph,
                "fingerprint collision between unequal graphs"
            );
            return GraphId(slot);
        }
        let slot = self.graphs.len();
        self.graphs.push(graph);
        self.fingerprints.push(fp);
        self.by_fingerprint.insert(fp, slot);
        GraphId(slot)
    }

    /// The shared adjacency for `id`.
    ///
    /// Ids are plain slot indices: one from a *different* registry is only
    /// caught when it is out of range here — an in-range foreign id
    /// resolves to whatever graph occupies that slot. Keep each service's
    /// ids with that service.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn graph(&self, id: GraphId) -> &Arc<Graph> {
        &self.graphs[id.0]
    }

    /// The content fingerprint for `id` (the cache-key ingredient).
    #[must_use]
    pub fn fingerprint(&self, id: GraphId) -> u64 {
        self.fingerprints[id.0]
    }

    /// Number of distinct graphs registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` when no graph has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn registration_deduplicates_by_content() {
        let mut reg = GraphRegistry::new();
        let g = generators::cycle(6);
        let a = reg.register(Arc::new(g.clone()));
        let b = reg.register(Arc::new(g.clone())); // same content, new Arc
        assert_eq!(a, b, "equal graphs must share one registration");
        assert_eq!(reg.len(), 1);
        let c = reg.register(Arc::new(generators::complete(6)));
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.fingerprint(a), g.fingerprint());
        assert_eq!(reg.graph(a).m(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_graphs_are_rejected_at_registration() {
        let mut reg = GraphRegistry::new();
        let _ = reg.register(Arc::new(cc_graph::Graph::undirected(1)));
    }
}
