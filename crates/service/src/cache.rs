//! The fingerprint-keyed [`ResultCache`].

use crate::query::{ComputeKind, Response};
use std::collections::BTreeMap;

/// The canonical key of one distributed computation: the graph's content
/// fingerprint, the computation kind, and a digest of the config-relevant
/// knobs (route seed, relay policy, girth parameters — everything that can
/// move the *accounting* of a run). Executor and transport are deliberately
/// **absent**: the determinism contract makes them deployment choices that
/// cannot change answers, rounds, words, or fingerprints, so a result
/// primed on one backend is valid on every other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CacheKey {
    pub(crate) fingerprint: u64,
    pub(crate) kind: ComputeKind,
    pub(crate) knobs: u64,
}

/// One primed computation: the answer plus the simulated cost the priming
/// run paid. Replays return the same triple bit-for-bit — with **zero**
/// additional simulated rounds.
#[derive(Debug, Clone)]
pub(crate) struct Primed {
    pub(crate) response: Response,
    pub(crate) rounds: u64,
    pub(crate) words: u64,
}

/// Fingerprint-keyed store of primed computations. Each entry is stamped
/// with an insertion sequence number so the retention caps can evict
/// oldest-primed-first — a deterministic order, because priming order is
/// fixed by the seeded batch drain.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    entries: BTreeMap<CacheKey, (u64, Primed)>,
    next_seq: u64,
}

impl ResultCache {
    pub(crate) fn get(&self, key: &CacheKey) -> Option<&Primed> {
        self.entries.get(key).map(|(_, primed)| primed)
    }

    pub(crate) fn insert(&mut self, key: CacheKey, primed: Primed) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(key, (seq, primed));
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Approximate bytes held by the cache: each entry's response payload
    /// ([`Response::approx_bytes`]) plus its key and cost counters. The
    /// ROADMAP names unbounded cache growth as the service's open leak —
    /// this is the number the retention caps are enforced against.
    pub(crate) fn approx_bytes(&self) -> u64 {
        let per_entry = (std::mem::size_of::<CacheKey>() + std::mem::size_of::<Primed>()) as u64;
        self.entries
            .values()
            .map(|(_, p)| per_entry + p.response.approx_bytes())
            .sum()
    }

    /// Evicts oldest-primed entries until both caps hold; returns how many
    /// entries were dropped. Deterministic: insertion sequence numbers
    /// follow the seeded drain order, never caller timing.
    pub(crate) fn enforce(&mut self, max_entries: usize, max_bytes: u64) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > max_entries
            || (self.entries.len() > 1 && self.approx_bytes() > max_bytes)
        {
            let oldest = *self
                .entries
                .iter()
                .min_by_key(|(_, (seq, _))| *seq)
                .expect("non-empty past a cap")
                .0;
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }
}
