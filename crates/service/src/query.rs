//! The typed query/response surface of the service.

use cc_algebra::Dist;
use cc_apsp::ApspTables;
use std::sync::Arc;

/// One question about one registered graph.
///
/// Every variant maps to a *computation kind* ([`Query::compute_kind`])
/// that, together with the graph's content fingerprint and the service's
/// config-relevant knobs, forms the canonical cache key. Point-to-point
/// [`Query::Distance`] queries deliberately share the [`Query::ApspTable`]
/// computation: the cached table memoizes them into O(1) local lookups
/// with zero additional simulated rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Query {
    /// Count triangles (directed graphs: directed 3-cycles) — Corollary 2.
    TriangleCount,
    /// The full exact APSP distance + routing tables — Corollary 6.
    ApspTable,
    /// Shortest-path distance from `s` to `t` (served from the memoized
    /// APSP table; `INFINITY` when unreachable).
    Distance {
        /// Source node.
        s: usize,
        /// Target node.
        t: usize,
    },
    /// The girth — [`cc_subgraph::girth`] for undirected graphs (Theorem
    /// 15), [`cc_subgraph::directed_girth`] for directed ones (Corollary
    /// 16); `None` for acyclic inputs.
    GirthBound,
    /// Whether the (undirected) graph contains a 4-cycle — the Theorem 4
    /// O(1)-round combinatorial detector.
    SubgraphFlag,
}

/// The distinct distributed computations the service knows how to run; the
/// unit of caching and of duplicate coalescing. Several queries may map to
/// one kind (`Distance` rides `Apsp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum ComputeKind {
    Triangles,
    Apsp,
    Girth,
    FourCycle,
}

impl Query {
    /// The computation this query needs (the coalescing/caching unit).
    pub(crate) fn compute_kind(self) -> ComputeKind {
        match self {
            Query::TriangleCount => ComputeKind::Triangles,
            Query::ApspTable | Query::Distance { .. } => ComputeKind::Apsp,
            Query::GirthBound => ComputeKind::Girth,
            Query::SubgraphFlag => ComputeKind::FourCycle,
        }
    }
}

/// A query's answer.
///
/// Variants mirror [`Query`]; the APSP table travels behind an [`Arc`] so
/// a cached table is shared, never copied, by however many table and
/// distance queries it serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Triangle (or directed 3-cycle) count.
    TriangleCount(u64),
    /// Exact distances and routing tables.
    ApspTable(Arc<ApspTables>),
    /// Point-to-point distance (`INFINITY` when unreachable).
    Distance(Dist),
    /// The girth, or `None` for acyclic graphs.
    GirthBound(Option<usize>),
    /// Whether a 4-cycle exists.
    SubgraphFlag(bool),
}

impl Response {
    /// The triangle count, if this is a [`Response::TriangleCount`].
    #[must_use]
    pub fn triangles(&self) -> Option<u64> {
        match self {
            Response::TriangleCount(t) => Some(*t),
            _ => None,
        }
    }

    /// The APSP tables, if this is a [`Response::ApspTable`].
    #[must_use]
    pub fn apsp(&self) -> Option<&Arc<ApspTables>> {
        match self {
            Response::ApspTable(t) => Some(t),
            _ => None,
        }
    }

    /// The distance, if this is a [`Response::Distance`].
    #[must_use]
    pub fn distance(&self) -> Option<Dist> {
        match self {
            Response::Distance(d) => Some(*d),
            _ => None,
        }
    }

    /// The girth, if this is a [`Response::GirthBound`].
    #[must_use]
    pub fn girth(&self) -> Option<Option<usize>> {
        match self {
            Response::GirthBound(g) => Some(*g),
            _ => None,
        }
    }

    /// The flag, if this is a [`Response::SubgraphFlag`].
    #[must_use]
    pub fn subgraph_flag(&self) -> Option<bool> {
        match self {
            Response::SubgraphFlag(f) => Some(*f),
            _ => None,
        }
    }

    /// Approximate heap + inline size of this response in bytes, for the
    /// cache-size gauges. Scalar answers count their value; the APSP tables
    /// count both `n × n` matrices (distances and routing), which is where
    /// cache memory actually goes.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        use std::mem::size_of;
        match self {
            Response::TriangleCount(_) => size_of::<u64>() as u64,
            Response::ApspTable(t) => {
                let n = t.dist.n() as u64;
                n * n * (size_of::<Dist>() + size_of::<usize>()) as u64
            }
            Response::Distance(_) => size_of::<Dist>() as u64,
            Response::GirthBound(_) => size_of::<Option<usize>>() as u64,
            Response::SubgraphFlag(_) => size_of::<bool>() as u64,
        }
    }
}
