//! The warm [`CliquePool`]: simulator instances built once, checked out
//! per query, reset and checked back in — never rebuilt.

use cc_clique::{Clique, CliqueConfig};
use cc_runtime::Executor;
use std::collections::BTreeMap;

/// A pool of warm [`Clique`] instances, keyed by clique size `n` under one
/// fixed `(executor, transport)` configuration.
///
/// Building a clique is the expensive part of a one-shot call: the pooled
/// executor spawns worker threads, the channel transport one OS thread per
/// node, the socket transport whole worker processes. The pool pays that
/// once per `(n, config)` and then serves every subsequent query by
/// [`Clique::reset`] — which zeroes the accounting but keeps the warm
/// infrastructure — so the steady-state cost of a query is the simulation
/// itself, not the setup. All instances share **one** executor handle
/// (one worker pool of OS threads), via
/// [`Clique::with_config_and_executor`].
///
/// The reuse is semantically invisible: a reset clique replays a fresh
/// clique bit-for-bit (answers, rounds, words, pattern fingerprints), which
/// the determinism suite pins.
#[derive(Debug)]
pub struct CliquePool {
    cfg: CliqueConfig,
    exec: Executor,
    idle: BTreeMap<usize, Vec<Clique>>,
    built: u64,
    reused: u64,
}

impl CliquePool {
    /// An empty pool serving cliques configured by `cfg`. The executor is
    /// built here, once, and shared by every instance the pool ever
    /// creates.
    #[must_use]
    pub fn new(cfg: CliqueConfig) -> Self {
        let exec = cfg.build_executor();
        Self {
            cfg,
            exec,
            idle: BTreeMap::new(),
            built: 0,
            reused: 0,
        }
    }

    /// The shared executor handle (a cheap clone; pooled kinds share one
    /// persistent worker pool).
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.exec.clone()
    }

    /// Checks out a clique of `n` nodes: a warm idle instance when one
    /// exists (reset, so its accounting reads zero), a freshly built one
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn checkout(&mut self, n: usize) -> Clique {
        match self.idle.get_mut(&n).and_then(Vec::pop) {
            Some(mut clique) => {
                self.reused += 1;
                clique.reset();
                clique
            }
            None => {
                self.built += 1;
                Clique::with_config_and_executor(n, self.cfg.clone(), self.exec.clone())
            }
        }
    }

    /// Returns a clique to the pool for the next checkout of its size.
    pub fn checkin(&mut self, clique: Clique) {
        self.idle.entry(clique.n()).or_default().push(clique);
    }

    /// Cliques ever built (cold constructions).
    #[must_use]
    pub fn built(&self) -> u64 {
        self.built
    }

    /// Checkouts served by a warm instance instead of a build.
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Idle warm instances of size `n` right now.
    #[must_use]
    pub fn idle_instances(&self, n: usize) -> usize {
        self.idle.get(&n).map_or(0, Vec::len)
    }

    /// Idle warm instances across every size (the occupancy gauge).
    #[must_use]
    pub fn idle_total(&self) -> usize {
        self.idle.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_prefers_warm_instances() {
        let mut pool = CliquePool::new(CliqueConfig::default());
        let a = pool.checkout(8);
        assert_eq!((pool.built(), pool.reused()), (1, 0));
        pool.checkin(a);
        assert_eq!(pool.idle_instances(8), 1);
        let b = pool.checkout(8);
        assert_eq!((pool.built(), pool.reused()), (1, 1), "warm hit");
        assert_eq!(b.rounds(), 0, "checked-out instance starts reset");
        // A different size is a different key: cold build.
        let c = pool.checkout(4);
        assert_eq!((pool.built(), pool.reused()), (2, 1));
        pool.checkin(b);
        pool.checkin(c);
    }

    #[test]
    fn instances_share_one_executor_pool() {
        use cc_clique::ExecutorKind;
        let mut pool = CliquePool::new(CliqueConfig {
            executor: ExecutorKind::Parallel { threads: 3 },
            ..CliqueConfig::default()
        });
        let a = pool.checkout(6);
        let b = pool.checkout(6);
        // 2 workers spawned once at pool construction; instance builds
        // must not add any.
        assert_eq!(pool.executor().threads_spawned(), 2);
        assert_eq!(a.executor().threads_spawned(), 2);
        assert_eq!(b.executor().threads_spawned(), 2);
    }
}
