//! # cc-congest: the CONGEST model
//!
//! The paper's conclusions (§5) propose carrying its congested-clique
//! techniques into the standard **CONGEST** model, where the `n` nodes of
//! `G` communicate *only along the edges of `G`* (one `O(log n)`-bit word
//! per edge direction per round): "fast triangle detection in the CONGEST
//! model is trivial in those areas of the network that are sparse … in
//! dense areas we may have enough overall bandwidth for fast matrix
//! multiplication algorithms."
//!
//! This crate provides that future-work substrate and the classical
//! comparison points on it:
//!
//! * [`Congest`] — a round-faithful simulator (per-edge word queues, the
//!   same honest accounting as [`cc_clique::Clique`]);
//! * [`triangle_detect`] — the folklore `O(Δ)`-round neighbourhood
//!   exchange, whose *degree*-dependence is exactly what the paper's clique
//!   algorithms remove;
//! * [`bfs`] / [`sssp_bellman_ford`] — distance computation whose
//!   `Θ(diameter)` round cost illustrates why the clique model "masks away
//!   the effect of distances" (paper §1).
//!
//! ## Example
//!
//! ```rust
//! use cc_congest::{bfs, Congest};
//! use cc_graph::generators;
//!
//! let g = generators::cycle(10);
//! let mut net = Congest::new(&g);
//! let dist = bfs(&mut net, 0);
//! assert_eq!(dist[5], Some(5));
//! assert_eq!(net.rounds(), 6); // a BFS wave pays the eccentricity
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_clique::Word;
use cc_graph::Graph;
use std::collections::BTreeMap;

/// A simulated CONGEST network over a graph `G`: communication happens
/// only along edges of `G`, one word per edge direction per round.
///
/// As in [`cc_clique::Clique`], algorithms enqueue words and the simulator
/// executes synchronous rounds; the reported round count is the number of
/// executed rounds (the longest per-edge queue per step).
#[derive(Debug)]
pub struct Congest<'g> {
    g: &'g Graph,
    rounds: u64,
    words: u64,
}

/// Messages delivered by one [`Congest::exchange`] step:
/// `inbox[v]` maps each in-neighbour to the words it sent.
pub type EdgeInboxes = Vec<BTreeMap<usize, Vec<Word>>>;

impl<'g> Congest<'g> {
    /// Creates a CONGEST network over `g`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has fewer than 2 nodes.
    #[must_use]
    pub fn new(g: &'g Graph) -> Self {
        assert!(g.n() >= 2, "a network needs at least 2 nodes");
        Self {
            g,
            rounds: 0,
            words: 0,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// Synchronous rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total words delivered so far.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.words
    }

    /// One communication step: node `v`'s generator returns messages for
    /// its **out-neighbours only**; the step costs as many rounds as the
    /// longest per-edge queue.
    ///
    /// # Panics
    ///
    /// Panics if a message targets a non-neighbour — CONGEST has no other
    /// links.
    pub fn exchange<F>(&mut self, mut messages: F) -> EdgeInboxes
    where
        F: FnMut(usize) -> Vec<(usize, Vec<Word>)>,
    {
        let n = self.n();
        let mut inboxes: EdgeInboxes = vec![BTreeMap::new(); n];
        let mut max_queue = 0u64;
        for v in 0..n {
            for (u, payload) in messages(v) {
                assert!(
                    self.g.has_edge(v, u),
                    "CONGEST violation: {v} -> {u} is not an edge of G"
                );
                if payload.is_empty() {
                    continue;
                }
                self.words += payload.len() as u64;
                let entry = inboxes[u].entry(v).or_default();
                entry.extend(payload);
                max_queue = max_queue.max(entry.len() as u64);
            }
        }
        self.rounds += max_queue;
        inboxes
    }

    /// Convenience: every node sends the same word to all its neighbours
    /// (one round, like a local flood step).
    pub fn flood<F>(&mut self, mut word_of: F) -> EdgeInboxes
    where
        F: FnMut(usize) -> Option<Word>,
    {
        let g = self.g;
        self.exchange(|v| match word_of(v) {
            Some(w) => g.neighbors(v).map(|u| (u, vec![w])).collect(),
            None => Vec::new(),
        })
    }
}

/// Folklore CONGEST triangle detection: every node ships its neighbour
/// list to every neighbour (`deg(v)` words per incident edge), then checks
/// for a common neighbour locally. Costs `Θ(Δ)` rounds — the baseline whose
/// degree dependence the paper's clique algorithms eliminate.
///
/// # Panics
///
/// Panics on directed graphs.
#[must_use]
pub fn triangle_detect(net: &mut Congest<'_>) -> bool {
    let g = net.graph().clone();
    assert!(
        !g.is_directed(),
        "triangle detection expects an undirected graph"
    );
    let neighbor_lists: Vec<Vec<Word>> = (0..g.n())
        .map(|v| g.neighbors(v).map(|u| u as Word).collect())
        .collect();
    let inboxes = net.exchange(|v| {
        g.neighbors(v)
            .map(|u| (u, neighbor_lists[v].clone()))
            .collect()
    });
    // v sees N(u) for every neighbour u: a triangle exists iff some
    // received list shares a node with N(v).
    (0..g.n()).any(|v| {
        inboxes[v]
            .iter()
            .any(|(_, list)| list.iter().any(|&w| g.has_edge(v, w as usize)))
    })
}

/// BFS from `root`: hop distances computed by wave propagation, paying one
/// round per level — `Θ(ecc(root))` rounds, the distance dependence the
/// clique model abstracts away.
#[must_use]
pub fn bfs(net: &mut Congest<'_>, root: usize) -> Vec<Option<usize>> {
    let n = net.n();
    assert!(root < n, "root out of range");
    let mut dist: Vec<Option<usize>> = vec![None; n];
    dist[root] = Some(0);
    let mut frontier: Vec<usize> = vec![root];
    while !frontier.is_empty() {
        let in_frontier: Vec<bool> = {
            let mut f = vec![false; n];
            for &v in &frontier {
                f[v] = true;
            }
            f
        };
        let inboxes = net.flood(|v| {
            if in_frontier[v] {
                Some(v as Word)
            } else {
                None
            }
        });
        let mut next = Vec::new();
        for v in 0..n {
            if dist[v].is_none() && !inboxes[v].is_empty() {
                let level = frontier
                    .first()
                    .and_then(|&f| dist[f])
                    .expect("frontier nodes have distances");
                dist[v] = Some(level + 1);
                next.push(v);
            }
        }
        frontier = next;
    }
    dist
}

/// Single-source Bellman–Ford in CONGEST for non-negative weights: each
/// round every improved node announces its tentative distance to its
/// neighbours. Terminates after at most `n` waves; `Θ(n)` rounds worst
/// case on weighted paths.
///
/// # Panics
///
/// Panics if weights are negative or `root` is out of range.
#[must_use]
pub fn sssp_bellman_ford(net: &mut Congest<'_>, root: usize) -> Vec<Option<i64>> {
    let n = net.n();
    assert!(root < n, "root out of range");
    assert!(
        net.graph().edges().iter().all(|&(_, _, w)| w >= 0),
        "non-negative weights required"
    );
    let mut dist: Vec<Option<i64>> = vec![None; n];
    dist[root] = Some(0);
    let mut changed: Vec<bool> = vec![false; n];
    changed[root] = true;
    loop {
        let snapshot = dist.clone();
        let announce: Vec<bool> = changed.clone();
        let inboxes = net.flood(|v| {
            if announce[v] {
                snapshot[v].map(|d| d as Word)
            } else {
                None
            }
        });
        changed = vec![false; n];
        let mut any = false;
        for v in 0..n {
            for (&u, words) in &inboxes[v] {
                let du = words[0] as i64;
                let w = net.graph().weight(u, v).expect("edge weight");
                let cand = du + w;
                if dist[v].is_none_or(|cur| cand < cur) {
                    dist[v] = Some(cand);
                    changed[v] = true;
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    #[test]
    fn exchange_rejects_non_edges() {
        let g = generators::path(4);
        let mut net = Congest::new(&g);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.exchange(|v| if v == 0 { vec![(3, vec![1])] } else { vec![] })
        }));
        assert!(result.is_err(), "0 -> 3 is not an edge of P4");
    }

    #[test]
    fn triangle_detection_matches_oracle() {
        for (g, expect) in [
            (generators::complete(6), true),
            (generators::petersen(), false),
            (generators::cycle(3), true),
            (generators::grid(3, 3), false),
        ] {
            let mut net = Congest::new(&g);
            assert_eq!(triangle_detect(&mut net), expect);
        }
        for seed in 0..5 {
            let g = generators::gnp(20, 0.15, seed);
            let mut net = Congest::new(&g);
            assert_eq!(
                triangle_detect(&mut net),
                oracle::count_triangles(&g) > 0,
                "seed={seed}"
            );
        }
    }

    #[test]
    fn triangle_rounds_scale_with_max_degree() {
        // A star has Δ = n-1: the folklore algorithm pays for it even
        // though a star is triangle-free — the weakness the paper's clique
        // algorithms do not have.
        let mut star = cc_graph::Graph::undirected(32);
        for v in 1..32 {
            star.add_edge(0, v);
        }
        let mut net = Congest::new(&star);
        assert!(!triangle_detect(&mut net));
        assert!(
            net.rounds() >= 31,
            "Δ-dependence expected, got {}",
            net.rounds()
        );
    }

    #[test]
    fn bfs_matches_oracle_and_pays_eccentricity() {
        for seed in 0..4 {
            let g = generators::gnp(18, 0.2, seed);
            let mut net = Congest::new(&g);
            let dist = bfs(&mut net, 0);
            assert_eq!(dist, oracle::bfs_dist(&g, 0), "seed={seed}");
        }
        let g = generators::path(20);
        let mut net = Congest::new(&g);
        let dist = bfs(&mut net, 0);
        assert_eq!(dist[19], Some(19));
        assert!(
            net.rounds() >= 19,
            "BFS pays the distance: {}",
            net.rounds()
        );
    }

    #[test]
    fn sssp_matches_dijkstra() {
        for seed in 0..4 {
            let g = generators::weighted_gnp(16, 0.25, 7, false, seed);
            let mut net = Congest::new(&g);
            let got = sssp_bellman_ford(&mut net, 0);
            let expect = oracle::dijkstra(&g, 0);
            for v in 0..16 {
                assert_eq!(got[v], expect[v].value(), "({v}) seed={seed}");
            }
        }
    }

    #[test]
    fn congest_pays_the_diameter() {
        // One BFS on a path pays Θ(n) rounds; the clique-side comparison
        // (Seidel's full APSP in far fewer rounds on the same graph) lives
        // in the facade's `congest_vs_clique` integration test.
        let g = generators::path(24);
        let mut net = Congest::new(&g);
        let _ = bfs(&mut net, 0);
        assert!(net.rounds() >= 23);
    }
}
