//! # cc-telemetry: zero-cost-when-disabled observability
//!
//! The determinism contract (rounds/words/fingerprints bit-identical across
//! every executor × transport × service combination) says *that* the stack
//! is correct; this crate says *where wall-clock goes*. Every layer —
//! engine, executor, transport, clique phases, service — emits structured
//! [`Event`]s through one process-global [`Telemetry`] handle, and the
//! events flow to a pluggable [`TelemetrySink`]:
//!
//! * [`MemorySink`] — an in-memory aggregator queryable from tests and
//!   reports: counters, gauges, per-phase wall-clock, per-backend link
//!   histograms, plus a bounded ring of recent raw events.
//! * [`JsonlSink`] — one JSON object per event appended to a file, for
//!   offline analysis.
//! * [`RoundTimeline`] — a human-readable renderer over a memory snapshot.
//!
//! ## Selecting a level: `CC_TRACE`
//!
//! The `CC_TRACE` environment variable picks the level (and optionally the
//! sink) for every default-configured run in the process, mirroring
//! `CC_EXECUTOR` / `CC_TRANSPORT`:
//!
//! ```text
//! CC_TRACE=off                  # default: no sink, near-zero overhead
//! CC_TRACE=summary              # phases, config warnings, service gauges
//! CC_TRACE=rounds               # + per-round engine/transport events
//! CC_TRACE=full                 # + per-dispatch executor decisions
//! CC_TRACE=full:/tmp/run.jsonl  # any level may append ":path" for JSONL
//! ```
//!
//! Without a `:path` suffix, events aggregate into a process-global
//! [`MemorySink`] reachable via [`Telemetry::memory`]. A malformed value —
//! unknown level, empty path, a path on `off` — is rejected as a whole and
//! reported once per process (the shared [`env_config`] contract), exactly
//! like `parallel:banana` or `socket:banana`.
//!
//! ## Observer-only contract
//!
//! Instrumentation never feeds back into the simulation: results, rounds,
//! words, and pattern fingerprints are bit-identical between `CC_TRACE=off`
//! and `CC_TRACE=full` (pinned by the determinism suite). When the level is
//! [`TraceLevel::Off`] — the default — every [`Telemetry::emit`] call is a
//! branch on an already-resolved handle and the event is never even
//! constructed.
//!
//! ## Programmatic use
//!
//! ```rust
//! use cc_telemetry::{Telemetry, TraceLevel};
//!
//! // First install wins; later lazy env initialisation is skipped.
//! let handle = Telemetry::with_memory(TraceLevel::Rounds);
//! let _ = cc_telemetry::install(handle);
//! let tel = cc_telemetry::global();
//! tel.emit(TraceLevel::Rounds, || cc_telemetry::Event::Counter {
//!     name: "example_events",
//!     delta: 1,
//! });
//! if let Some(mem) = tel.memory() {
//!     assert_eq!(mem.counter("example_events"), 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env_config;
mod event;
mod sink;
mod timeline;

pub use crate::event::{event_from_json, event_json, Event, LinkHistogram};
pub use crate::sink::{
    DispatchAgg, EngineAgg, EpochPath, JsonlSink, MemorySink, MemorySnapshot, NetsimAgg, PhaseAgg,
    TelemetrySink, TransportAgg, WireSink, WorkerAgg,
};
pub use crate::timeline::RoundTimeline;

use std::sync::{Arc, OnceLock};

/// How much the instrumented stack reports. Levels are ordered: each level
/// includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No sink, no events; emit calls cost one branch (the default).
    #[default]
    Off,
    /// Run-level events: clique phase start/end (with wall-clock), config
    /// warnings, service batch gauges.
    Summary,
    /// Per-round events: engine step/barrier timings and transport link
    /// histograms, one event per round barrier.
    Rounds,
    /// Everything: per-dispatch executor decisions and socket frame-batch
    /// sizes on top of the round events.
    Full,
}

impl TraceLevel {
    /// The lowercase spec name (`"off"`, `"summary"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Rounds => "rounds",
            TraceLevel::Full => "full",
        }
    }
}

/// A parsed `CC_TRACE` spec: the level plus an optional JSONL sink path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSpec {
    /// The trace level.
    pub level: TraceLevel,
    /// JSONL output path (`CC_TRACE=<level>:<path>`); `None` selects the
    /// in-memory aggregator.
    pub path: Option<String>,
}

impl TraceSpec {
    /// The accepted grammar, for warning messages.
    pub const EXPECTED: &'static str = "off, summary, rounds, or full[:path]";

    /// Parses a `CC_TRACE` spec: a level name (`off`, `summary`, `rounds`,
    /// `full`), optionally suffixed `:<path>` to write JSONL instead of
    /// aggregating in memory. `None` for unknown names **or** malformed
    /// sink suffixes — `full:` (empty path) and `off:anything` (a sink on a
    /// disabled level) must not silently mean something else, mirroring the
    /// `parallel:banana` / `socket:banana` contract.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let (name, path) = match raw.split_once(':') {
            Some((name, path)) => (name, Some(path)),
            None => (raw, None),
        };
        let level = match name.to_ascii_lowercase().as_str() {
            "off" | "none" => TraceLevel::Off,
            "summary" => TraceLevel::Summary,
            "rounds" => TraceLevel::Rounds,
            "full" => TraceLevel::Full,
            _ => return None,
        };
        match path {
            None => Some(Self { level, path: None }),
            Some("") => None, // `full:` — an empty sink path is malformed
            Some(_) if level == TraceLevel::Off => None, // `off:path` is contradictory
            Some(p) => Some(Self {
                level,
                path: Some(p.to_string()),
            }),
        }
    }

    /// Resolves a `CC_TRACE` spec against the shared [`env_config`]
    /// machinery: `None` (unset) resolves to the fallback, a parseable
    /// value to its spec, and a malformed value to an error carrying the
    /// raw spec.
    pub fn resolve(spec: Option<&str>, fallback: TraceSpec) -> Result<Self, String> {
        env_config::resolve(spec, fallback, Self::parse)
    }
}

/// The telemetry handle every instrumented layer emits through: a level and
/// an optional sink. Cloning is cheap (the sink is shared).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    level: TraceLevel,
    sink: Option<Arc<dyn TelemetrySink>>,
    /// Set when the sink is the in-memory aggregator, so captures stay
    /// queryable without downcasting.
    memory: Option<Arc<MemorySink>>,
}

impl Telemetry {
    /// A disabled handle: no sink, every emit is a cheap branch.
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// A handle recording into a fresh in-memory aggregator at `level`.
    #[must_use]
    pub fn with_memory(level: TraceLevel) -> Self {
        if level == TraceLevel::Off {
            return Self::off();
        }
        let memory = Arc::new(MemorySink::default());
        Self {
            level,
            sink: Some(memory.clone() as Arc<dyn TelemetrySink>),
            memory: Some(memory),
        }
    }

    /// A handle recording into an explicit sink at `level`.
    #[must_use]
    pub fn with_sink(level: TraceLevel, sink: Arc<dyn TelemetrySink>) -> Self {
        if level == TraceLevel::Off {
            return Self::off();
        }
        Self {
            level,
            sink: Some(sink),
            memory: None,
        }
    }

    /// Builds the handle a [`TraceSpec`] describes: no sink for
    /// [`TraceLevel::Off`], the in-memory aggregator when no path is given,
    /// a [`JsonlSink`] otherwise. An unwritable path is reported once on
    /// stderr and falls back to the in-memory aggregator — a broken
    /// observer must not kill the run.
    #[must_use]
    pub fn from_spec(spec: &TraceSpec) -> Self {
        match (&spec.path, spec.level) {
            (_, TraceLevel::Off) => Self::off(),
            (None, level) => Self::with_memory(level),
            (Some(path), level) => match JsonlSink::create(path) {
                Ok(sink) => Self::with_sink(level, Arc::new(sink)),
                Err(e) => {
                    eprintln!(
                        "cc-telemetry: cannot open CC_TRACE sink {path:?} ({e}); \
                         using the in-memory aggregator"
                    );
                    Self::with_memory(level)
                }
            },
        }
    }

    /// The handle the `CC_TRACE` environment variable describes. A
    /// malformed value is reported once per process and falls back to
    /// [`TraceLevel::Off`] — the stderr path is used directly here because
    /// this *is* the global handle's initialiser (routing the warning
    /// through [`global`] would re-enter it).
    #[must_use]
    pub fn from_env() -> Self {
        let spec = match std::env::var("CC_TRACE") {
            Err(_) => TraceSpec::default(),
            Ok(raw) => match TraceSpec::parse(&raw) {
                Some(spec) => spec,
                None => {
                    env_config::warn_once_stderr(
                        "cc-telemetry",
                        "CC_TRACE",
                        &raw,
                        TraceSpec::EXPECTED,
                        "off",
                    );
                    TraceSpec::default()
                }
            },
        };
        Self::from_spec(&spec)
    }

    /// The configured level.
    #[must_use]
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether events at `at` are recorded. The cheap guard hot paths use
    /// before doing any measurement work (taking timestamps, walking
    /// loads).
    #[inline]
    #[must_use]
    pub fn enabled(&self, at: TraceLevel) -> bool {
        at > TraceLevel::Off && at <= self.level && self.sink.is_some()
    }

    /// Records the event `make` builds, if `at` is enabled. The closure is
    /// never called when disabled, so emit sites cost one branch at
    /// [`TraceLevel::Off`].
    #[inline]
    pub fn emit(&self, at: TraceLevel, make: impl FnOnce() -> Event) {
        if self.enabled(at) {
            if let Some(sink) = &self.sink {
                sink.record(&make());
            }
        }
    }

    /// The in-memory aggregator, when this handle records into one.
    #[must_use]
    pub fn memory(&self) -> Option<&Arc<MemorySink>> {
        self.memory.as_ref()
    }

    /// Merges one worker's shipped event lines (the `Frame::Telemetry`
    /// payload: [`event_json`] lines drained from the worker's
    /// [`WireSink`]) into this handle's sink, wrapping each parsed event
    /// in [`Event::Worker`] for per-process attribution. Malformed lines
    /// are skipped — a corrupt capture must not fail the run — and a
    /// sink-less handle ignores the batch entirely.
    pub fn merge_worker(&self, worker: u32, lines: &[String]) {
        let Some(sink) = &self.sink else { return };
        for line in lines {
            if let Some(event) = event_from_json(line) {
                sink.record(&Event::Worker {
                    worker,
                    event: Box::new(event),
                });
            }
        }
    }

    /// Flushes the sink (a no-op for the memory sink).
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Installs `telemetry` as the process-global handle. First install wins —
/// including the lazy `CC_TRACE` initialisation performed by the first
/// [`global`] call — so programmatic installs (tests, reports, examples)
/// must run before any instrumented layer is touched. Returns the rejected
/// handle when the global was already initialised.
pub fn install(telemetry: Telemetry) -> Result<(), Telemetry> {
    GLOBAL.set(telemetry)
}

/// The process-global telemetry handle every instrumented layer emits
/// through. Initialised on first use from `CC_TRACE` unless [`install`] ran
/// first.
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(Telemetry::from_env)
}

/// The global handle if it was already initialised, without triggering the
/// lazy `CC_TRACE` initialisation. Used by [`env_config::warn_once`] so a
/// warning fired *during* global initialisation cannot re-enter it.
pub(crate) fn global_if_initialised() -> Option<&'static Telemetry> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_inclusive() {
        assert!(TraceLevel::Off < TraceLevel::Summary);
        assert!(TraceLevel::Summary < TraceLevel::Rounds);
        assert!(TraceLevel::Rounds < TraceLevel::Full);
        let tel = Telemetry::with_memory(TraceLevel::Rounds);
        assert!(tel.enabled(TraceLevel::Summary));
        assert!(tel.enabled(TraceLevel::Rounds));
        assert!(!tel.enabled(TraceLevel::Full));
        assert!(!tel.enabled(TraceLevel::Off), "Off is never an emit level");
    }

    #[test]
    fn spec_parser_accepts_known_levels() {
        assert_eq!(
            TraceSpec::parse("off"),
            Some(TraceSpec {
                level: TraceLevel::Off,
                path: None
            })
        );
        assert_eq!(
            TraceSpec::parse("SUMMARY"),
            Some(TraceSpec {
                level: TraceLevel::Summary,
                path: None
            })
        );
        assert_eq!(
            TraceSpec::parse("rounds"),
            Some(TraceSpec {
                level: TraceLevel::Rounds,
                path: None
            })
        );
        assert_eq!(
            TraceSpec::parse("full:/tmp/t.jsonl"),
            Some(TraceSpec {
                level: TraceLevel::Full,
                path: Some("/tmp/t.jsonl".to_string())
            })
        );
        assert_eq!(TraceSpec::parse("verbose"), None);
    }

    #[test]
    fn spec_parser_rejects_malformed_sink_suffixes() {
        // The `parallel:banana` contract: a malformed suffix rejects the
        // whole spec so `from_env` warns once and falls back, instead of
        // the spec silently meaning something else.
        assert_eq!(TraceSpec::parse("full:"), None, "empty sink path");
        assert_eq!(TraceSpec::parse("rounds:"), None, "empty sink path");
        assert_eq!(
            TraceSpec::parse("off:/tmp/t.jsonl"),
            None,
            "a sink on a disabled level is contradictory, not ignorable"
        );
        assert_eq!(TraceSpec::parse("off:"), None);
        assert_eq!(TraceSpec::parse(""), None);
        assert_eq!(TraceSpec::parse(":path"), None, "missing level");
    }

    #[test]
    fn spec_resolution_reports_malformed_specs() {
        // The shared env_config contract, exercised end to end for the new
        // knob: unset resolves to the fallback silently, malformed values
        // surface as errors carrying the raw spec.
        let fb = TraceSpec::default();
        assert_eq!(TraceSpec::resolve(None, fb.clone()), Ok(fb.clone()));
        assert_eq!(
            TraceSpec::resolve(Some("rounds"), fb.clone()),
            Ok(TraceSpec {
                level: TraceLevel::Rounds,
                path: None
            })
        );
        assert_eq!(
            TraceSpec::resolve(Some("full:"), fb.clone()),
            Err("full:".to_string())
        );
        assert_eq!(
            TraceSpec::resolve(Some("banana"), fb),
            Err("banana".to_string())
        );
    }

    #[test]
    fn off_handles_have_no_sink_and_never_build_events() {
        let tel = Telemetry::off();
        assert!(!tel.enabled(TraceLevel::Summary));
        let mut built = false;
        tel.emit(TraceLevel::Summary, || {
            built = true;
            Event::Counter {
                name: "never",
                delta: 1,
            }
        });
        assert!(!built, "disabled emit must not construct the event");
        // An Off spec yields no sink even through the constructors that
        // normally attach one.
        assert!(Telemetry::with_memory(TraceLevel::Off).memory().is_none());
        assert!(Telemetry::from_spec(&TraceSpec::default())
            .memory()
            .is_none());
    }

    #[test]
    fn merge_worker_attributes_parsed_lines_and_skips_garbage() {
        let tel = Telemetry::with_memory(TraceLevel::Full);
        let lines = vec![
            event_json(&Event::FrameBatch {
                backend: "socket",
                frames: 2,
                bytes: 128,
            }),
            "not json at all".to_string(),
            event_json(&Event::Counter {
                name: "worker_events_dropped",
                delta: 5,
            }),
        ];
        tel.merge_worker(3, &lines);
        let snap = tel.memory().expect("memory handle").snapshot();
        let agg = &snap.workers[&3];
        assert_eq!(
            (agg.events, agg.frame_batches, agg.frame_bytes),
            (2, 1, 128)
        );
        // Worker traffic stays out of the orchestrator's transport view.
        assert!(snap.transports.is_empty());
        // A sink-less handle ignores merges without panicking.
        Telemetry::off().merge_worker(0, &lines);
    }

    #[test]
    fn memory_handles_capture_emitted_events() {
        let tel = Telemetry::with_memory(TraceLevel::Summary);
        tel.emit(TraceLevel::Summary, || Event::Counter {
            name: "widgets",
            delta: 3,
        });
        tel.emit(TraceLevel::Full, || Event::Counter {
            name: "widgets",
            delta: 100, // above the level: dropped
        });
        let mem = tel.memory().expect("memory handle");
        assert_eq!(mem.counter("widgets"), 3);
    }
}
