//! Sinks: where emitted events go.
//!
//! [`MemorySink`] aggregates in-process and is queryable from tests and
//! `cc-report`; [`JsonlSink`] appends one JSON object per event for offline
//! analysis. Both are cheap enough to leave attached for a whole test suite:
//! the memory sink keeps exact aggregates plus a bounded ring of recent raw
//! events rather than an unbounded log.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::{event_json, Event, LinkHistogram};

/// Destination for emitted [`Event`]s. Implementations must be `Send + Sync`
/// (instrumented layers emit from worker threads) and should never panic —
/// telemetry failures must not take down the simulation.
pub trait TelemetrySink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Per-phase aggregate across every [`Event::PhaseEnd`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseAgg {
    /// Times the phase closed.
    pub runs: u64,
    /// Total link-level rounds charged while the phase was open.
    pub rounds: u64,
    /// Total words delivered while the phase was open.
    pub words: u64,
    /// Total wall-clock across all runs.
    pub wall_ns: u64,
}

/// Engine-level aggregate across every [`Event::EngineRound`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineAgg {
    /// Round barriers observed.
    pub barriers: u64,
    /// Total node-stepping wall-clock.
    pub step_ns: u64,
    /// Total barrier (delivery) wall-clock.
    pub barrier_ns: u64,
    /// Total link-level rounds charged.
    pub rounds: u64,
    /// Total words delivered.
    pub words: u64,
}

/// Executor fan-out aggregate across every [`Event::ExecutorDispatch`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DispatchAgg {
    /// Jobs that ran inline (below the `CC_EXEC_CUTOVER` boundary).
    pub inline: u64,
    /// Jobs dispatched to worker threads.
    pub dispatched: u64,
    /// Total pieces across all jobs (queue depth integral).
    pub pieces: u64,
}

/// Per-backend transport aggregate across every [`Event::TransportRound`]
/// (and [`Event::FrameBatch`]) seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportAgg {
    /// Round barriers observed.
    pub rounds: u64,
    /// Total words across all links and rounds.
    pub words: u64,
    /// Heaviest single link seen in any round.
    pub max_link: u64,
    /// Largest per-round skew (`max_link / mean_link`) seen.
    pub max_skew: f64,
    /// Sum of per-round skews (divide by `rounds` for the mean).
    pub skew_sum: f64,
    /// Total barrier wall-clock.
    pub barrier_ns: u64,
    /// Merged per-link word-count histogram across all rounds.
    pub hist: LinkHistogram,
    /// Frame batches shipped (batching backends only).
    pub frame_batches: u64,
    /// Total encoded bytes across all frame batches.
    pub frame_bytes: u64,
    /// Program-resident round barriers observed.
    pub resident_rounds: u64,
    /// Total payload bytes exchanged worker→worker in resident rounds.
    pub peer_bytes: u64,
}

/// Network-conditioning aggregate across every [`Event::NetsimRound`] /
/// [`Event::NetsimFault`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetsimAgg {
    /// Conditioned round barriers observed.
    pub rounds: u64,
    /// Total simulated time across all rounds (sum of per-round maxima).
    pub sim_ns: u64,
    /// Total simulated retransmissions.
    pub retransmits: u64,
    /// Total straggler injections.
    pub stragglers: u64,
    /// Injected node crashes.
    pub faults: u64,
    /// Completed recoveries (state re-ships).
    pub recoveries: u64,
}

/// A point-in-time copy of everything a [`MemorySink`] has aggregated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemorySnapshot {
    /// Named monotone counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named gauges (last observed value wins).
    pub gauges: BTreeMap<&'static str, f64>,
    /// Rendered config warnings, in arrival order.
    pub warnings: Vec<String>,
    /// Per-phase aggregates, keyed by phase name.
    pub phases: BTreeMap<String, PhaseAgg>,
    /// Engine round-barrier aggregate.
    pub engine: EngineAgg,
    /// Executor fan-out aggregate.
    pub dispatch: DispatchAgg,
    /// Per-backend transport aggregates.
    pub transports: BTreeMap<&'static str, TransportAgg>,
    /// Network-conditioning aggregate (zero when netsim is off).
    pub netsim: NetsimAgg,
    /// Ring of the most recent raw events (capacity
    /// [`MemorySink::RECENT_CAP`]; oldest dropped first).
    pub recent: Vec<Event>,
    /// Raw events dropped from the ring once it filled.
    pub dropped: u64,
}

/// In-memory aggregating sink. Aggregates are exact for the whole capture;
/// only the raw-event ring is bounded.
#[derive(Debug, Default)]
pub struct MemorySink {
    state: Mutex<MemorySnapshot>,
}

impl MemorySink {
    /// Capacity of the recent raw-event ring.
    pub const RECENT_CAP: usize = 4096;

    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything aggregated so far.
    #[must_use]
    pub fn snapshot(&self) -> MemorySnapshot {
        self.state.lock().expect("telemetry state poisoned").clone()
    }

    /// Clears all aggregates and the raw-event ring (used by `cc-report` to
    /// capture per-backend runs with one global sink).
    pub fn reset(&self) {
        *self.state.lock().expect("telemetry state poisoned") = MemorySnapshot::default();
    }

    /// Current value of a named counter (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.counters.get(name).copied().unwrap_or(0)
    }

    /// Last observed value of a named gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.gauges.get(name).copied()
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("telemetry state poisoned");
        match event {
            Event::ConfigWarning {
                owner,
                var,
                raw,
                expected,
                using,
            } => {
                state.warnings.push(format!(
                    "{owner}: ignoring unrecognised {var}={raw:?} (expected {expected}); \
                     using {using}"
                ));
            }
            Event::Counter { name, delta } => {
                *state.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                state.gauges.insert(name, *value);
            }
            Event::PhaseStart { .. } => {}
            Event::PhaseEnd {
                name,
                rounds,
                words,
                wall_ns,
            } => {
                let agg = state.phases.entry(name.clone()).or_default();
                agg.runs += 1;
                agg.rounds += rounds;
                agg.words += words;
                agg.wall_ns += wall_ns;
            }
            Event::EngineRound {
                step_ns,
                barrier_ns,
                rounds,
                words,
                ..
            } => {
                state.engine.barriers += 1;
                state.engine.step_ns += step_ns;
                state.engine.barrier_ns += barrier_ns;
                state.engine.rounds += rounds;
                state.engine.words += words;
            }
            Event::ExecutorDispatch { pieces, threads } => {
                if *threads > 1 {
                    state.dispatch.dispatched += 1;
                } else {
                    state.dispatch.inline += 1;
                }
                state.dispatch.pieces += *pieces as u64;
            }
            Event::KernelDecision { .. } => {
                *state.counters.entry("kernel_decisions").or_insert(0) += 1;
            }
            Event::TransportRound {
                backend,
                words,
                max_link,
                mean_link,
                barrier_ns,
                hist,
                ..
            } => {
                let agg = state.transports.entry(backend).or_default();
                agg.rounds += 1;
                agg.words += words;
                agg.max_link = agg.max_link.max(*max_link);
                let skew = if *mean_link > 0.0 {
                    *max_link as f64 / mean_link
                } else {
                    0.0
                };
                agg.max_skew = agg.max_skew.max(skew);
                agg.skew_sum += skew;
                agg.barrier_ns += barrier_ns;
                agg.hist.merge(hist);
            }
            Event::FrameBatch {
                backend,
                frames: _,
                bytes,
            } => {
                let agg = state.transports.entry(backend).or_default();
                agg.frame_batches += 1;
                agg.frame_bytes += *bytes as u64;
            }
            Event::ResidentRound {
                backend,
                peer_bytes,
                ..
            } => {
                let agg = state.transports.entry(backend).or_default();
                agg.resident_rounds += 1;
                agg.peer_bytes += peer_bytes;
            }
            Event::NetsimRound {
                sim_ns,
                retransmits,
                stragglers,
                ..
            } => {
                state.netsim.rounds += 1;
                state.netsim.sim_ns += sim_ns;
                state.netsim.retransmits += retransmits;
                state.netsim.stragglers += stragglers;
            }
            // Per-link detail; the per-round aggregate above already counts.
            Event::NetsimRetransmit { .. } => {}
            Event::NetsimFault { kind, .. } => {
                if *kind == "crash" {
                    state.netsim.faults += 1;
                } else {
                    state.netsim.recoveries += 1;
                }
            }
        }
        if state.recent.len() >= Self::RECENT_CAP {
            state.recent.remove(0);
            state.dropped += 1;
        }
        state.recent.push(event.clone());
    }
}

/// Appends one JSON object per event to a file (the `full:path` /
/// `rounds:path` sink). Write errors are swallowed after creation —
/// telemetry must never fail the run.
///
/// Every record is flushed through to the file immediately: the global
/// handle lives in a `static` that is never dropped, so any bytes still
/// buffered at process exit would be lost (and short runs would trace
/// nothing at all).
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<LineWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    /// Propagates the [`File::create`] failure so the caller can fall back
    /// to another sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(LineWriter::new(file)),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("telemetry writer poisoned");
        let _ = writeln!(out, "{}", event_json(event));
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("telemetry writer poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(backend: &'static str, loads: &[u64], barrier_ns: u64) -> Event {
        let links = loads.iter().filter(|w| **w > 0).count();
        let words: u64 = loads.iter().sum();
        let max_link = loads.iter().copied().max().unwrap_or(0);
        let mut hist = LinkHistogram::default();
        for &w in loads {
            hist.add(w);
        }
        Event::TransportRound {
            backend,
            epoch: 0,
            links,
            words,
            max_link,
            mean_link: if links > 0 {
                words as f64 / links as f64
            } else {
                0.0
            },
            barrier_ns,
            hist,
        }
    }

    #[test]
    fn memory_sink_aggregates_counters_gauges_and_warnings() {
        let sink = MemorySink::new();
        sink.record(&Event::Counter {
            name: "config_warnings",
            delta: 1,
        });
        sink.record(&Event::Counter {
            name: "config_warnings",
            delta: 2,
        });
        sink.record(&Event::Gauge {
            name: "hit_rate",
            value: 0.25,
        });
        sink.record(&Event::Gauge {
            name: "hit_rate",
            value: 0.5,
        });
        sink.record(&Event::ConfigWarning {
            owner: "cc-runtime".to_string(),
            var: "CC_EXECUTOR",
            raw: "banana".to_string(),
            expected: "sequential, parallel".to_string(),
            using: "Sequential".to_string(),
        });
        assert_eq!(sink.counter("config_warnings"), 3);
        assert_eq!(sink.gauge("hit_rate"), Some(0.5));
        assert_eq!(sink.counter("missing"), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.warnings.len(), 1);
        assert!(snap.warnings[0].contains("CC_EXECUTOR=\"banana\""));
    }

    #[test]
    fn memory_sink_aggregates_phases_engine_and_transport() {
        let sink = MemorySink::new();
        sink.record(&Event::PhaseEnd {
            name: "mm".to_string(),
            rounds: 3,
            words: 30,
            wall_ns: 100,
        });
        sink.record(&Event::PhaseEnd {
            name: "mm".to_string(),
            rounds: 2,
            words: 20,
            wall_ns: 50,
        });
        sink.record(&Event::EngineRound {
            round: 0,
            live: 4,
            step_ns: 10,
            barrier_ns: 20,
            rounds: 1,
            words: 8,
        });
        sink.record(&Event::ExecutorDispatch {
            pieces: 64,
            threads: 4,
        });
        sink.record(&Event::ExecutorDispatch {
            pieces: 1,
            threads: 1,
        });
        sink.record(&round("inmemory", &[4, 2, 2], 7));
        sink.record(&round("inmemory", &[8, 0, 0], 9));
        sink.record(&Event::FrameBatch {
            backend: "socket",
            frames: 5,
            bytes: 640,
        });

        let snap = sink.snapshot();
        let mm = &snap.phases["mm"];
        assert_eq!((mm.runs, mm.rounds, mm.words, mm.wall_ns), (2, 5, 50, 150));
        assert_eq!(snap.engine.barriers, 1);
        assert_eq!(snap.engine.step_ns, 10);
        assert_eq!((snap.dispatch.inline, snap.dispatch.dispatched), (1, 1));
        assert_eq!(snap.dispatch.pieces, 65);

        let t = &snap.transports["inmemory"];
        assert_eq!(t.rounds, 2);
        assert_eq!(t.words, 16);
        assert_eq!(t.max_link, 8);
        // Round 1: max 4 / mean 8/3; round 2: max 8 / mean 8 = 1.0.
        assert!(
            t.max_skew > 1.49 && t.max_skew < 1.51,
            "skew {}",
            t.max_skew
        );
        assert_eq!(t.barrier_ns, 16);
        assert_eq!(t.hist.total(), 4);

        let s = &snap.transports["socket"];
        assert_eq!((s.frame_batches, s.frame_bytes), (1, 640));
    }

    #[test]
    fn recent_ring_is_bounded_and_reset_clears_everything() {
        let sink = MemorySink::new();
        for i in 0..(MemorySink::RECENT_CAP as u64 + 10) {
            sink.record(&Event::Counter {
                name: "tick",
                delta: i,
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.recent.len(), MemorySink::RECENT_CAP);
        assert_eq!(snap.dropped, 10);
        // Oldest were dropped: the first retained event is delta=10.
        assert_eq!(
            snap.recent[0],
            Event::Counter {
                name: "tick",
                delta: 10
            }
        );

        sink.reset();
        assert_eq!(sink.snapshot(), MemorySnapshot::default());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!(
            "cc-telemetry-jsonl-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).expect("create jsonl");
        sink.record(&Event::Counter {
            name: "config_warnings",
            delta: 1,
        });
        sink.record(&Event::PhaseStart {
            name: "mm".to_string(),
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"counter\""));
        assert!(lines[1].contains("\"event\":\"phase_start\""));
        let _ = std::fs::remove_file(&path);
    }
}
