//! Sinks: where emitted events go.
//!
//! [`MemorySink`] aggregates in-process and is queryable from tests and
//! `cc-report`; [`JsonlSink`] appends one JSON object per event for offline
//! analysis. Both are cheap enough to leave attached for a whole test suite:
//! the memory sink keeps exact aggregates plus a bounded ring of recent raw
//! events rather than an unbounded log.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::{event_json, Event, LinkHistogram};

/// Destination for emitted [`Event`]s. Implementations must be `Send + Sync`
/// (instrumented layers emit from worker threads) and should never panic —
/// telemetry failures must not take down the simulation.
pub trait TelemetrySink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Per-phase aggregate across every [`Event::PhaseEnd`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseAgg {
    /// Times the phase closed.
    pub runs: u64,
    /// Total link-level rounds charged while the phase was open.
    pub rounds: u64,
    /// Total words delivered while the phase was open.
    pub words: u64,
    /// Total wall-clock across all runs.
    pub wall_ns: u64,
}

/// Engine-level aggregate across every [`Event::EngineRound`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineAgg {
    /// Round barriers observed.
    pub barriers: u64,
    /// Total node-stepping wall-clock.
    pub step_ns: u64,
    /// Total barrier (delivery) wall-clock.
    pub barrier_ns: u64,
    /// Total link-level rounds charged.
    pub rounds: u64,
    /// Total words delivered.
    pub words: u64,
}

/// Executor fan-out aggregate across every [`Event::ExecutorDispatch`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DispatchAgg {
    /// Jobs that ran inline (below the `CC_EXEC_CUTOVER` boundary).
    pub inline: u64,
    /// Jobs dispatched to worker threads.
    pub dispatched: u64,
    /// Total pieces across all jobs (queue depth integral).
    pub pieces: u64,
}

/// Per-backend transport aggregate across every [`Event::TransportRound`]
/// (and [`Event::FrameBatch`]) seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportAgg {
    /// Round barriers observed.
    pub rounds: u64,
    /// Total words across all links and rounds.
    pub words: u64,
    /// Heaviest single link seen in any round.
    pub max_link: u64,
    /// Largest per-round skew (`max_link / mean_link`) seen.
    pub max_skew: f64,
    /// Sum of per-round skews (divide by `rounds` for the mean).
    pub skew_sum: f64,
    /// Total barrier wall-clock.
    pub barrier_ns: u64,
    /// Merged per-link word-count histogram across all rounds.
    pub hist: LinkHistogram,
    /// Frame batches shipped (batching backends only).
    pub frame_batches: u64,
    /// Total encoded bytes across all frame batches.
    pub frame_bytes: u64,
    /// Program-resident round barriers observed.
    pub resident_rounds: u64,
    /// Total payload bytes exchanged worker→worker in resident rounds.
    pub peer_bytes: u64,
}

/// Per-worker-process aggregate across every [`Event::Worker`]-wrapped
/// event merged from a distributed capture, plus the orchestrator-measured
/// barrier lanes for that worker. Deliberately separate from the global
/// aggregates: a worker's `FrameBatch` is the worker's half of the wire,
/// not a second copy of the orchestrator's.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerAgg {
    /// Total merged events attributed to this worker.
    pub events: u64,
    /// Frame batches the worker shipped.
    pub frame_batches: u64,
    /// Total encoded bytes across the worker's frame batches.
    pub frame_bytes: u64,
    /// Program-resident rounds the worker stepped.
    pub resident_rounds: u64,
    /// Payload bytes the worker exchanged peer-to-peer.
    pub peer_bytes: u64,
    /// Kernel dispatch decisions taken inside the worker.
    pub kernel_decisions: u64,
    /// Config warnings the worker re-reported (deduped in
    /// [`MemorySnapshot::warnings`]; counted here per process).
    pub config_warnings: u64,
    /// Total barrier-lane wall-clock charged to this worker (its busy
    /// time as seen from the orchestrator's commit-collection loop).
    pub lane_ns: u64,
    /// Barrier lanes observed for this worker.
    pub lanes: u64,
}

/// One epoch's critical path derived from merged [`Event::BarrierLane`]s:
/// who closed the barrier, how far behind the median they were, and every
/// worker's lane. Produced by [`MemorySnapshot::critical_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPath {
    /// Backend the barrier belongs to.
    pub backend: &'static str,
    /// Barrier epoch.
    pub epoch: u64,
    /// Worker whose commit token closed the barrier (last to arrive).
    pub closer: u32,
    /// The closer's wall-clock from barrier start.
    pub max_ns: u64,
    /// Median lane wall-clock across the epoch's workers.
    pub median_ns: u64,
    /// Every `(worker, wall_ns)` lane, sorted by worker id.
    pub lanes: Vec<(u32, u64)>,
}

/// Network-conditioning aggregate across every [`Event::NetsimRound`] /
/// [`Event::NetsimFault`] seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetsimAgg {
    /// Conditioned round barriers observed.
    pub rounds: u64,
    /// Total simulated time across all rounds (sum of per-round maxima).
    pub sim_ns: u64,
    /// Total simulated retransmissions.
    pub retransmits: u64,
    /// Total straggler injections.
    pub stragglers: u64,
    /// Injected node crashes.
    pub faults: u64,
    /// Completed recoveries (state re-ships).
    pub recoveries: u64,
}

/// A point-in-time copy of everything a [`MemorySink`] has aggregated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemorySnapshot {
    /// Named monotone counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named gauges (last observed value wins).
    pub gauges: BTreeMap<&'static str, f64>,
    /// Rendered config warnings, in arrival order.
    pub warnings: Vec<String>,
    /// Per-phase aggregates, keyed by phase name.
    pub phases: BTreeMap<String, PhaseAgg>,
    /// Engine round-barrier aggregate.
    pub engine: EngineAgg,
    /// Executor fan-out aggregate.
    pub dispatch: DispatchAgg,
    /// Per-backend transport aggregates.
    pub transports: BTreeMap<&'static str, TransportAgg>,
    /// Network-conditioning aggregate (zero when netsim is off).
    pub netsim: NetsimAgg,
    /// Per-worker aggregates from merged distributed captures, keyed by
    /// worker process index (empty for single-process runs).
    pub workers: BTreeMap<u32, WorkerAgg>,
    /// Raw barrier lanes keyed by `(backend, epoch)` — epoch alone would
    /// collide when several backends run against one sink. Each entry is
    /// the `(worker, wall_ns)` arrivals for that barrier in commit order.
    pub lanes: BTreeMap<(&'static str, u64), Vec<(u32, u64)>>,
    /// How many processes reported each deduplicated config warning,
    /// keyed by the rendered message in [`MemorySnapshot::warnings`].
    pub warning_counts: BTreeMap<String, u64>,
    /// Ring of the most recent raw events (capacity
    /// [`MemorySink::RECENT_CAP`]; oldest dropped first).
    pub recent: Vec<Event>,
    /// Raw events dropped from the ring once it filled.
    pub dropped: u64,
}

impl MemorySnapshot {
    /// Derives the per-epoch critical path from the merged barrier lanes:
    /// for every `(backend, epoch)` barrier, the worker that closed it,
    /// its wall-clock, and the epoch median. Sorted by backend then epoch.
    #[must_use]
    pub fn critical_path(&self) -> Vec<EpochPath> {
        self.lanes
            .iter()
            .filter(|(_, lanes)| !lanes.is_empty())
            .map(|(&(backend, epoch), lanes)| {
                let (closer, max_ns) = lanes
                    .iter()
                    .copied()
                    .max_by_key(|&(worker, ns)| (ns, worker))
                    .expect("non-empty lanes");
                let mut sorted_ns: Vec<u64> = lanes.iter().map(|&(_, ns)| ns).collect();
                sorted_ns.sort_unstable();
                let median_ns = sorted_ns[sorted_ns.len() / 2];
                let mut by_worker = lanes.clone();
                by_worker.sort_unstable();
                EpochPath {
                    backend,
                    epoch,
                    closer,
                    max_ns,
                    median_ns,
                    lanes: by_worker,
                }
            })
            .collect()
    }

    /// Cumulative per-worker `(busy_ns, idle_ns)` across all merged
    /// barriers: busy is the worker's own lane time, idle is how long it
    /// sat waiting for each epoch's closing worker (`epoch max − lane`).
    #[must_use]
    pub fn worker_busy_idle(&self) -> BTreeMap<u32, (u64, u64)> {
        let mut out: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for lanes in self.lanes.values() {
            let max_ns = lanes.iter().map(|&(_, ns)| ns).max().unwrap_or(0);
            for &(worker, ns) in lanes {
                let entry = out.entry(worker).or_insert((0, 0));
                entry.0 += ns;
                entry.1 += max_ns - ns;
            }
        }
        out
    }
}

/// In-memory aggregating sink. Aggregates are exact for the whole capture;
/// only the raw-event ring is bounded.
#[derive(Debug, Default)]
pub struct MemorySink {
    state: Mutex<MemorySnapshot>,
}

impl MemorySink {
    /// Capacity of the recent raw-event ring.
    pub const RECENT_CAP: usize = 4096;

    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything aggregated so far.
    #[must_use]
    pub fn snapshot(&self) -> MemorySnapshot {
        self.state.lock().expect("telemetry state poisoned").clone()
    }

    /// Clears all aggregates and the raw-event ring (used by `cc-report` to
    /// capture per-backend runs with one global sink).
    pub fn reset(&self) {
        *self.state.lock().expect("telemetry state poisoned") = MemorySnapshot::default();
    }

    /// Current value of a named counter (0 if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.counters.get(name).copied().unwrap_or(0)
    }

    /// Last observed value of a named gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let state = self.state.lock().expect("telemetry state poisoned");
        state.gauges.get(name).copied()
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("telemetry state poisoned");
        match event {
            Event::ConfigWarning {
                owner,
                var,
                raw,
                expected,
                using,
            } => {
                push_warning(&mut state, owner, var, raw, expected, using);
            }
            Event::Counter { name, delta } => {
                *state.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                state.gauges.insert(name, *value);
            }
            Event::PhaseStart { .. } => {}
            Event::PhaseEnd {
                name,
                rounds,
                words,
                wall_ns,
            } => {
                let agg = state.phases.entry(name.clone()).or_default();
                agg.runs += 1;
                agg.rounds += rounds;
                agg.words += words;
                agg.wall_ns += wall_ns;
            }
            Event::EngineRound {
                step_ns,
                barrier_ns,
                rounds,
                words,
                ..
            } => {
                state.engine.barriers += 1;
                state.engine.step_ns += step_ns;
                state.engine.barrier_ns += barrier_ns;
                state.engine.rounds += rounds;
                state.engine.words += words;
            }
            Event::ExecutorDispatch { pieces, threads } => {
                if *threads > 1 {
                    state.dispatch.dispatched += 1;
                } else {
                    state.dispatch.inline += 1;
                }
                state.dispatch.pieces += *pieces as u64;
            }
            Event::KernelDecision { .. } => {
                *state.counters.entry("kernel_decisions").or_insert(0) += 1;
            }
            Event::TransportRound {
                backend,
                words,
                max_link,
                mean_link,
                barrier_ns,
                hist,
                ..
            } => {
                let agg = state.transports.entry(backend).or_default();
                agg.rounds += 1;
                agg.words += words;
                agg.max_link = agg.max_link.max(*max_link);
                let skew = if *mean_link > 0.0 {
                    *max_link as f64 / mean_link
                } else {
                    0.0
                };
                agg.max_skew = agg.max_skew.max(skew);
                agg.skew_sum += skew;
                agg.barrier_ns += barrier_ns;
                agg.hist.merge(hist);
            }
            Event::FrameBatch {
                backend,
                frames: _,
                bytes,
            } => {
                let agg = state.transports.entry(backend).or_default();
                agg.frame_batches += 1;
                agg.frame_bytes += *bytes as u64;
            }
            Event::ResidentRound {
                backend,
                peer_bytes,
                ..
            } => {
                let agg = state.transports.entry(backend).or_default();
                agg.resident_rounds += 1;
                agg.peer_bytes += peer_bytes;
            }
            Event::NetsimRound {
                sim_ns,
                retransmits,
                stragglers,
                ..
            } => {
                state.netsim.rounds += 1;
                state.netsim.sim_ns += sim_ns;
                state.netsim.retransmits += retransmits;
                state.netsim.stragglers += stragglers;
            }
            // Per-link detail; the per-round aggregate above already counts.
            Event::NetsimRetransmit { .. } => {}
            Event::NetsimFault { kind, .. } => {
                if *kind == "crash" {
                    state.netsim.faults += 1;
                } else {
                    state.netsim.recoveries += 1;
                }
            }
            // A merged worker event updates *worker* attribution only: the
            // global engine/transport aggregates stay the orchestrator's
            // view, so existing single-process assertions keep holding and
            // nothing is double counted.
            Event::Worker { worker, event } => {
                let agg = state.workers.entry(*worker).or_default();
                agg.events += 1;
                match event.as_ref() {
                    Event::FrameBatch { bytes, .. } => {
                        agg.frame_batches += 1;
                        agg.frame_bytes += *bytes as u64;
                    }
                    Event::ResidentRound { peer_bytes, .. } => {
                        agg.resident_rounds += 1;
                        agg.peer_bytes += peer_bytes;
                    }
                    Event::KernelDecision { .. } => agg.kernel_decisions += 1,
                    Event::ConfigWarning {
                        owner,
                        var,
                        raw,
                        expected,
                        using,
                    } => {
                        agg.config_warnings += 1;
                        push_warning(&mut state, owner, var, raw, expected, using);
                    }
                    _ => {}
                }
            }
            Event::Reset { .. } => {
                *state.counters.entry("clique_resets").or_insert(0) += 1;
            }
            Event::BarrierLane {
                backend,
                epoch,
                worker,
                wall_ns,
            } => {
                state
                    .lanes
                    .entry((backend, *epoch))
                    .or_default()
                    .push((*worker, *wall_ns));
                let agg = state.workers.entry(*worker).or_default();
                agg.lane_ns += wall_ns;
                agg.lanes += 1;
            }
        }
        if state.recent.len() >= Self::RECENT_CAP {
            state.recent.remove(0);
            state.dropped += 1;
        }
        state.recent.push(event.clone());
    }
}

/// Records one config warning with cross-process deduplication: the
/// rendered message lands in `warnings` the first time any process reports
/// it; repeats (each worker re-parses the same knob) only bump its count.
fn push_warning(
    state: &mut MemorySnapshot,
    owner: &str,
    var: &str,
    raw: &str,
    expected: &str,
    using: &str,
) {
    let msg = format!(
        "{owner}: ignoring unrecognised {var}={raw:?} (expected {expected}); using {using}"
    );
    let count = state.warning_counts.entry(msg.clone()).or_insert(0);
    *count += 1;
    if *count == 1 {
        state.warnings.push(msg);
    }
}

/// Appends one JSON object per event to a file (the `full:path` /
/// `rounds:path` sink). Write errors are swallowed after creation —
/// telemetry must never fail the run.
///
/// Every record is flushed through to the file immediately: the global
/// handle lives in a `static` that is never dropped, so any bytes still
/// buffered at process exit would be lost (and short runs would trace
/// nothing at all).
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<LineWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    /// Propagates the [`File::create`] failure so the caller can fall back
    /// to another sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(LineWriter::new(file)),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("telemetry writer poisoned");
        let _ = writeln!(out, "{}", event_json(event));
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("telemetry writer poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Worker-side buffering sink for distributed capture: events accumulate
/// in memory as [`crate::event_json`] lines and are drained by the
/// transport worker loop into `Frame::Telemetry` payloads piggybacked on
/// the next commit (or the final Shutdown/Release). Bounded — a worker
/// that never reaches a flush point must not grow without limit; drops are
/// surfaced as a synthetic `worker_events_dropped` counter line on the
/// next drain.
#[derive(Debug, Default)]
pub struct WireSink {
    state: Mutex<WireState>,
}

#[derive(Debug, Default)]
struct WireState {
    lines: Vec<String>,
    dropped: u64,
}

impl WireSink {
    /// Maximum buffered lines between drains.
    pub const WIRE_CAP: usize = 65_536;

    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every buffered event line, leaving the buffer empty. If the
    /// buffer overflowed since the last drain, the first returned line is
    /// a `worker_events_dropped` counter recording the loss.
    #[must_use]
    pub fn drain(&self) -> Vec<String> {
        let mut state = self.state.lock().expect("wire sink poisoned");
        let mut lines = std::mem::take(&mut state.lines);
        if state.dropped > 0 {
            let dropped = std::mem::take(&mut state.dropped);
            lines.insert(
                0,
                event_json(&Event::Counter {
                    name: "worker_events_dropped",
                    delta: dropped,
                }),
            );
        }
        lines
    }

    /// Whether nothing is buffered (drains can be skipped entirely, so an
    /// idle worker ships no telemetry frames at all).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let state = self.state.lock().expect("wire sink poisoned");
        state.lines.is_empty() && state.dropped == 0
    }
}

impl TelemetrySink for WireSink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("wire sink poisoned");
        if state.lines.len() >= Self::WIRE_CAP {
            state.dropped += 1;
            return;
        }
        state.lines.push(event_json(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(backend: &'static str, loads: &[u64], barrier_ns: u64) -> Event {
        let links = loads.iter().filter(|w| **w > 0).count();
        let words: u64 = loads.iter().sum();
        let max_link = loads.iter().copied().max().unwrap_or(0);
        let mut hist = LinkHistogram::default();
        for &w in loads {
            hist.add(w);
        }
        Event::TransportRound {
            backend,
            epoch: 0,
            links,
            words,
            max_link,
            mean_link: if links > 0 {
                words as f64 / links as f64
            } else {
                0.0
            },
            barrier_ns,
            hist,
        }
    }

    #[test]
    fn memory_sink_aggregates_counters_gauges_and_warnings() {
        let sink = MemorySink::new();
        sink.record(&Event::Counter {
            name: "config_warnings",
            delta: 1,
        });
        sink.record(&Event::Counter {
            name: "config_warnings",
            delta: 2,
        });
        sink.record(&Event::Gauge {
            name: "hit_rate",
            value: 0.25,
        });
        sink.record(&Event::Gauge {
            name: "hit_rate",
            value: 0.5,
        });
        sink.record(&Event::ConfigWarning {
            owner: "cc-runtime".to_string(),
            var: "CC_EXECUTOR",
            raw: "banana".to_string(),
            expected: "sequential, parallel".to_string(),
            using: "Sequential".to_string(),
        });
        assert_eq!(sink.counter("config_warnings"), 3);
        assert_eq!(sink.gauge("hit_rate"), Some(0.5));
        assert_eq!(sink.counter("missing"), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.warnings.len(), 1);
        assert!(snap.warnings[0].contains("CC_EXECUTOR=\"banana\""));
    }

    #[test]
    fn memory_sink_aggregates_phases_engine_and_transport() {
        let sink = MemorySink::new();
        sink.record(&Event::PhaseEnd {
            name: "mm".to_string(),
            rounds: 3,
            words: 30,
            wall_ns: 100,
        });
        sink.record(&Event::PhaseEnd {
            name: "mm".to_string(),
            rounds: 2,
            words: 20,
            wall_ns: 50,
        });
        sink.record(&Event::EngineRound {
            round: 0,
            live: 4,
            step_ns: 10,
            barrier_ns: 20,
            rounds: 1,
            words: 8,
        });
        sink.record(&Event::ExecutorDispatch {
            pieces: 64,
            threads: 4,
        });
        sink.record(&Event::ExecutorDispatch {
            pieces: 1,
            threads: 1,
        });
        sink.record(&round("inmemory", &[4, 2, 2], 7));
        sink.record(&round("inmemory", &[8, 0, 0], 9));
        sink.record(&Event::FrameBatch {
            backend: "socket",
            frames: 5,
            bytes: 640,
        });

        let snap = sink.snapshot();
        let mm = &snap.phases["mm"];
        assert_eq!((mm.runs, mm.rounds, mm.words, mm.wall_ns), (2, 5, 50, 150));
        assert_eq!(snap.engine.barriers, 1);
        assert_eq!(snap.engine.step_ns, 10);
        assert_eq!((snap.dispatch.inline, snap.dispatch.dispatched), (1, 1));
        assert_eq!(snap.dispatch.pieces, 65);

        let t = &snap.transports["inmemory"];
        assert_eq!(t.rounds, 2);
        assert_eq!(t.words, 16);
        assert_eq!(t.max_link, 8);
        // Round 1: max 4 / mean 8/3; round 2: max 8 / mean 8 = 1.0.
        assert!(
            t.max_skew > 1.49 && t.max_skew < 1.51,
            "skew {}",
            t.max_skew
        );
        assert_eq!(t.barrier_ns, 16);
        assert_eq!(t.hist.total(), 4);

        let s = &snap.transports["socket"];
        assert_eq!((s.frame_batches, s.frame_bytes), (1, 640));
    }

    #[test]
    fn recent_ring_is_bounded_and_reset_clears_everything() {
        let sink = MemorySink::new();
        for i in 0..(MemorySink::RECENT_CAP as u64 + 10) {
            sink.record(&Event::Counter {
                name: "tick",
                delta: i,
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.recent.len(), MemorySink::RECENT_CAP);
        assert_eq!(snap.dropped, 10);
        // Oldest were dropped: the first retained event is delta=10.
        assert_eq!(
            snap.recent[0],
            Event::Counter {
                name: "tick",
                delta: 10
            }
        );

        sink.reset();
        assert_eq!(sink.snapshot(), MemorySnapshot::default());
    }

    #[test]
    fn worker_events_attribute_without_touching_global_aggregates() {
        let sink = MemorySink::new();
        sink.record(&Event::Worker {
            worker: 0,
            event: Box::new(Event::FrameBatch {
                backend: "socket",
                frames: 4,
                bytes: 256,
            }),
        });
        sink.record(&Event::Worker {
            worker: 1,
            event: Box::new(Event::ResidentRound {
                backend: "tcp",
                epoch: 2,
                live: 8,
                peer_bytes: 1024,
                orchestrator_bytes: 0,
            }),
        });
        sink.record(&Event::Worker {
            worker: 1,
            event: Box::new(Event::KernelDecision {
                kernel: "bitset",
                op: "mul_bool",
                n: 64,
                tile: 0,
            }),
        });
        let snap = sink.snapshot();
        assert_eq!(snap.workers.len(), 2);
        let w0 = &snap.workers[&0];
        assert_eq!((w0.events, w0.frame_batches, w0.frame_bytes), (1, 1, 256));
        let w1 = &snap.workers[&1];
        assert_eq!(
            (
                w1.events,
                w1.resident_rounds,
                w1.peer_bytes,
                w1.kernel_decisions
            ),
            (2, 1, 1024, 1)
        );
        // Worker-attributed traffic must not leak into the orchestrator's
        // per-backend aggregates.
        assert!(snap.transports.is_empty());
    }

    #[test]
    fn duplicate_worker_warnings_dedupe_with_per_process_counts() {
        let sink = MemorySink::new();
        let warn = |worker: Option<u32>| {
            let inner = Event::ConfigWarning {
                owner: "cc-runtime".to_string(),
                var: "CC_KERNEL",
                raw: "banana".to_string(),
                expected: "names".to_string(),
                using: "bitset".to_string(),
            };
            match worker {
                Some(w) => Event::Worker {
                    worker: w,
                    event: Box::new(inner),
                },
                None => inner,
            }
        };
        sink.record(&warn(None)); // orchestrator
        sink.record(&warn(Some(0)));
        sink.record(&warn(Some(1)));
        let snap = sink.snapshot();
        assert_eq!(snap.warnings.len(), 1, "one footer line per knob");
        assert_eq!(snap.warning_counts[&snap.warnings[0]], 3);
        assert_eq!(snap.workers[&0].config_warnings, 1);
        assert_eq!(snap.workers[&1].config_warnings, 1);
    }

    #[test]
    fn barrier_lanes_derive_critical_path_and_busy_idle() {
        let sink = MemorySink::new();
        let lane = |epoch, worker, wall_ns| Event::BarrierLane {
            backend: "socket",
            epoch,
            worker,
            wall_ns,
        };
        // Epoch 0: worker 1 closes at 300 (median 200); epoch 1: worker 0
        // closes at 500 (median 100).
        sink.record(&lane(0, 0, 200));
        sink.record(&lane(0, 1, 300));
        sink.record(&lane(0, 2, 100));
        sink.record(&lane(1, 0, 500));
        sink.record(&lane(1, 1, 100));
        sink.record(&lane(1, 2, 50));
        let snap = sink.snapshot();
        let path = snap.critical_path();
        assert_eq!(path.len(), 2);
        assert_eq!(
            (path[0].closer, path[0].max_ns, path[0].median_ns),
            (1, 300, 200)
        );
        assert_eq!(
            (path[1].closer, path[1].max_ns, path[1].median_ns),
            (0, 500, 100)
        );
        let busy_idle = snap.worker_busy_idle();
        // Worker 2: busy 100+50, idle (300-100)+(500-50).
        assert_eq!(busy_idle[&2], (150, 650));
        // The closer of every epoch it closes accrues no idle there.
        assert_eq!(busy_idle[&1], (400, 400));
        assert_eq!(snap.workers[&0].lane_ns, 700);
        assert_eq!(snap.workers[&0].lanes, 2);
    }

    #[test]
    fn wire_sink_buffers_lines_and_reports_overflow() {
        let sink = WireSink::new();
        assert!(sink.is_empty());
        sink.record(&Event::Counter {
            name: "tick",
            delta: 1,
        });
        sink.record(&Event::PhaseStart {
            name: "mm".to_string(),
        });
        assert!(!sink.is_empty());
        let lines = sink.drain();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"counter\""));
        assert!(sink.is_empty());
        assert!(sink.drain().is_empty(), "drain leaves the buffer empty");

        for _ in 0..(WireSink::WIRE_CAP + 3) {
            sink.record(&Event::Counter {
                name: "tick",
                delta: 1,
            });
        }
        let lines = sink.drain();
        assert_eq!(lines.len(), WireSink::WIRE_CAP + 1);
        assert!(
            lines[0].contains("worker_events_dropped") && lines[0].contains("\"delta\":3"),
            "overflow surfaced: {}",
            lines[0]
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let path = std::env::temp_dir().join(format!(
            "cc-telemetry-jsonl-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).expect("create jsonl");
        sink.record(&Event::Counter {
            name: "config_warnings",
            delta: 1,
        });
        sink.record(&Event::PhaseStart {
            name: "mm".to_string(),
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"counter\""));
        assert!(lines[1].contains("\"event\":\"phase_start\""));
        let _ = std::fs::remove_file(&path);
    }
}
