//! Human-readable rendering of a capture: one line per engine/transport
//! round from the recent-event ring, plus aggregate footers.

use std::fmt;

use crate::event::{Event, LinkHistogram};
use crate::sink::MemorySnapshot;

/// A renderable timeline built from a [`MemorySnapshot`]. `Display` prints
/// per-round lines (from the bounded recent-event ring, so very long
/// captures show only the tail) followed by phase and transport totals.
#[derive(Debug, Clone)]
pub struct RoundTimeline {
    snapshot: MemorySnapshot,
}

impl RoundTimeline {
    /// Wraps a snapshot for rendering.
    #[must_use]
    pub fn from_snapshot(snapshot: &MemorySnapshot) -> Self {
        Self {
            snapshot: snapshot.clone(),
        }
    }
}

/// Compact sparkline-style rendering of a link histogram: one glyph per
/// non-empty leading range, scaled to the largest bucket.
fn render_hist(hist: &LinkHistogram) -> String {
    const GLYPHS: [char; 5] = ['.', ':', '+', '*', '#'];
    let top = hist.buckets.iter().copied().max().unwrap_or(0);
    if top == 0 {
        return "-".to_string();
    }
    let last = hist.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
    hist.buckets[..=last]
        .iter()
        .map(|&b| {
            if b == 0 {
                '_'
            } else {
                GLYPHS[((b * GLYPHS.len() as u64).div_ceil(top)) as usize - 1]
            }
        })
        .collect()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

impl fmt::Display for RoundTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = &self.snapshot;
        if snap.dropped > 0 {
            writeln!(
                f,
                "(timeline tail: {} earlier events dropped from the ring)",
                snap.dropped
            )?;
        }
        for event in &snap.recent {
            match event {
                Event::PhaseStart { name } => writeln!(f, "phase {name} {{")?,
                Event::PhaseEnd {
                    name,
                    rounds,
                    words,
                    wall_ns,
                } => writeln!(
                    f,
                    "}} phase {name}: rounds={rounds} words={words} wall={:.3}ms",
                    ms(*wall_ns)
                )?,
                Event::EngineRound {
                    round,
                    live,
                    step_ns,
                    barrier_ns,
                    rounds,
                    words,
                } => writeln!(
                    f,
                    "  engine round {round:>4}: live={live} step={:.3}ms barrier={:.3}ms \
                     rounds={rounds} words={words}",
                    ms(*step_ns),
                    ms(*barrier_ns)
                )?,
                Event::TransportRound {
                    backend,
                    epoch,
                    links,
                    words,
                    max_link,
                    mean_link,
                    barrier_ns,
                    hist,
                } => writeln!(
                    f,
                    "  {backend} epoch {epoch:>4}: links={links} words={words} \
                     max={max_link} mean={mean_link:.1} barrier={:.3}ms hist=[{}]",
                    ms(*barrier_ns),
                    render_hist(hist)
                )?,
                Event::FrameBatch {
                    backend,
                    frames,
                    bytes,
                } => writeln!(f, "  {backend} batch: frames={frames} bytes={bytes}")?,
                Event::ResidentRound {
                    backend,
                    epoch,
                    live,
                    peer_bytes,
                    orchestrator_bytes,
                } => writeln!(
                    f,
                    "  {backend} resident epoch {epoch:>4}: live={live} \
                     peer_bytes={peer_bytes} orchestrator_bytes={orchestrator_bytes}"
                )?,
                Event::NetsimRound {
                    profile,
                    epoch,
                    links,
                    sim_ns,
                    retransmits,
                    stragglers,
                } => writeln!(
                    f,
                    "  netsim[{profile}] epoch {epoch:>4}: links={links} sim={:.3}ms \
                     retransmits={retransmits} stragglers={stragglers}",
                    ms(*sim_ns)
                )?,
                Event::NetsimFault {
                    profile,
                    epoch,
                    node,
                    kind,
                    state_words,
                } => writeln!(
                    f,
                    "  netsim[{profile}] epoch {epoch:>4}: {kind} node {node} \
                     (state_words={state_words})"
                )?,
                Event::ConfigWarning { owner, var, .. } => {
                    writeln!(f, "  warning: {owner} ignored malformed {var}")?;
                }
                Event::Reset {
                    rounds,
                    words,
                    epoch,
                } => writeln!(
                    f,
                    "-- reset: discarded rounds={rounds} words={words} (fabric epoch {epoch})"
                )?,
                // Merged worker events render with a `w<id>` lane prefix;
                // only the worker's wire-visible activity shows in the
                // ring — the rest lands in the per-worker footer.
                Event::Worker { worker, event } => match event.as_ref() {
                    Event::FrameBatch {
                        backend,
                        frames,
                        bytes,
                    } => writeln!(
                        f,
                        "  w{worker} {backend} batch: frames={frames} bytes={bytes}"
                    )?,
                    Event::ResidentRound {
                        backend,
                        epoch,
                        live,
                        peer_bytes,
                        orchestrator_bytes,
                    } => writeln!(
                        f,
                        "  w{worker} {backend} resident epoch {epoch:>4}: live={live} \
                         peer_bytes={peer_bytes} orchestrator_bytes={orchestrator_bytes}"
                    )?,
                    Event::ConfigWarning { owner, var, .. } => {
                        writeln!(f, "  w{worker} warning: {owner} ignored malformed {var}")?;
                    }
                    _ => {}
                },
                Event::Counter { .. }
                | Event::Gauge { .. }
                | Event::ExecutorDispatch { .. }
                | Event::KernelDecision { .. }
                | Event::BarrierLane { .. }
                | Event::NetsimRetransmit { .. } => {}
            }
        }

        if !snap.phases.is_empty() {
            writeln!(f, "phases:")?;
            for (name, agg) in &snap.phases {
                writeln!(
                    f,
                    "  {name}: runs={} rounds={} words={} wall={:.3}ms",
                    agg.runs,
                    agg.rounds,
                    agg.words,
                    ms(agg.wall_ns)
                )?;
            }
        }
        if snap.engine.barriers > 0 {
            writeln!(
                f,
                "engine: barriers={} step={:.3}ms barrier={:.3}ms rounds={} words={}",
                snap.engine.barriers,
                ms(snap.engine.step_ns),
                ms(snap.engine.barrier_ns),
                snap.engine.rounds,
                snap.engine.words
            )?;
        }
        if snap.dispatch.inline + snap.dispatch.dispatched > 0 {
            writeln!(
                f,
                "executor: inline={} dispatched={} pieces={}",
                snap.dispatch.inline, snap.dispatch.dispatched, snap.dispatch.pieces
            )?;
        }
        for (backend, agg) in &snap.transports {
            let mean_skew = if agg.rounds > 0 {
                agg.skew_sum / agg.rounds as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "{backend}: rounds={} words={} max_link={} skew(max/mean)={:.2}/{:.2} \
                 barrier={:.3}ms batches={} hist=[{}]",
                agg.rounds,
                agg.words,
                agg.max_link,
                agg.max_skew,
                mean_skew,
                ms(agg.barrier_ns),
                agg.frame_batches,
                render_hist(&agg.hist)
            )?;
        }
        if snap.netsim.rounds > 0 {
            writeln!(
                f,
                "netsim: rounds={} sim={:.3}ms retransmits={} stragglers={} \
                 faults={} recoveries={}",
                snap.netsim.rounds,
                ms(snap.netsim.sim_ns),
                snap.netsim.retransmits,
                snap.netsim.stragglers,
                snap.netsim.faults,
                snap.netsim.recoveries
            )?;
        }
        let path = snap.critical_path();
        if !path.is_empty() {
            const PATH_TAIL: usize = 64;
            writeln!(f, "critical path:")?;
            if path.len() > PATH_TAIL {
                writeln!(f, "  ({} earlier epochs omitted)", path.len() - PATH_TAIL)?;
            }
            for ep in path.iter().skip(path.len().saturating_sub(PATH_TAIL)) {
                let lanes: Vec<String> = ep
                    .lanes
                    .iter()
                    .map(|&(w, ns)| {
                        let star = if w == ep.closer { "*" } else { "" };
                        format!("w{w}={:.3}ms{star}", ms(ns))
                    })
                    .collect();
                let skew = if ep.median_ns > 0 {
                    ep.max_ns as f64 / ep.median_ns as f64
                } else {
                    0.0
                };
                writeln!(
                    f,
                    "  {} epoch {:>4}: closer=w{} max={:.3}ms median={:.3}ms skew={:.2} \
                     lanes[{}]",
                    ep.backend,
                    ep.epoch,
                    ep.closer,
                    ms(ep.max_ns),
                    ms(ep.median_ns),
                    skew,
                    lanes.join(" ")
                )?;
            }
        }
        if !snap.workers.is_empty() {
            let busy_idle = snap.worker_busy_idle();
            writeln!(f, "workers:")?;
            for (id, agg) in &snap.workers {
                let (busy, idle) = busy_idle.get(id).copied().unwrap_or((0, 0));
                writeln!(
                    f,
                    "  w{id}: events={} batches={} resident={} peer_bytes={} kernel={} \
                     warnings={} busy={:.3}ms idle={:.3}ms",
                    agg.events,
                    agg.frame_batches,
                    agg.resident_rounds,
                    agg.peer_bytes,
                    agg.kernel_decisions,
                    agg.config_warnings,
                    ms(busy),
                    ms(idle)
                )?;
            }
        }
        for (name, value) in &snap.gauges {
            writeln!(f, "gauge {name} = {value}")?;
        }
        if !snap.warnings.is_empty() {
            writeln!(f, "warnings (deduped across processes):")?;
            for w in &snap.warnings {
                let count = snap.warning_counts.get(w).copied().unwrap_or(1);
                if count > 1 {
                    writeln!(f, "  {w} [x{count} processes]")?;
                } else {
                    writeln!(f, "  {w}")?;
                }
            }
        }
        if let Some(warns) = snap.counters.get("config_warnings") {
            writeln!(f, "config warnings: {warns}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, TelemetrySink};

    #[test]
    fn timeline_renders_rounds_phases_and_totals() {
        let sink = MemorySink::new();
        sink.record(&Event::PhaseStart {
            name: "triangles".to_string(),
        });
        sink.record(&Event::EngineRound {
            round: 0,
            live: 8,
            step_ns: 1_500_000,
            barrier_ns: 250_000,
            rounds: 2,
            words: 64,
        });
        let mut hist = LinkHistogram::default();
        hist.add(8);
        hist.add(2);
        sink.record(&Event::TransportRound {
            backend: "inmemory",
            epoch: 0,
            links: 2,
            words: 10,
            max_link: 8,
            mean_link: 5.0,
            barrier_ns: 90_000,
            hist,
        });
        sink.record(&Event::PhaseEnd {
            name: "triangles".to_string(),
            rounds: 2,
            words: 64,
            wall_ns: 2_000_000,
        });
        sink.record(&Event::Gauge {
            name: "service_cache_entries",
            value: 3.0,
        });

        let text = RoundTimeline::from_snapshot(&sink.snapshot()).to_string();
        assert!(text.contains("phase triangles {"), "{text}");
        assert!(text.contains("engine round    0"), "{text}");
        assert!(text.contains("inmemory epoch    0"), "{text}");
        assert!(text.contains("phases:"), "{text}");
        assert!(text.contains("gauge service_cache_entries = 3"), "{text}");
    }

    #[test]
    fn timeline_renders_worker_lanes_and_critical_path() {
        let sink = MemorySink::new();
        sink.record(&Event::Worker {
            worker: 0,
            event: Box::new(Event::FrameBatch {
                backend: "socket",
                frames: 3,
                bytes: 192,
            }),
        });
        sink.record(&Event::Worker {
            worker: 1,
            event: Box::new(Event::ResidentRound {
                backend: "tcp",
                epoch: 0,
                live: 4,
                peer_bytes: 512,
                orchestrator_bytes: 0,
            }),
        });
        sink.record(&Event::BarrierLane {
            backend: "socket",
            epoch: 0,
            worker: 0,
            wall_ns: 2_000_000,
        });
        sink.record(&Event::BarrierLane {
            backend: "socket",
            epoch: 0,
            worker: 1,
            wall_ns: 3_000_000,
        });
        sink.record(&Event::Reset {
            rounds: 7,
            words: 99,
            epoch: 4,
        });

        let text = RoundTimeline::from_snapshot(&sink.snapshot()).to_string();
        assert!(text.contains("w0 socket batch: frames=3"), "{text}");
        assert!(text.contains("w1 tcp resident epoch"), "{text}");
        assert!(text.contains("critical path:"), "{text}");
        assert!(
            text.contains("closer=w1 max=3.000ms median=3.000ms"),
            "{text}"
        );
        assert!(text.contains("w1=3.000ms*"), "closer starred: {text}");
        assert!(text.contains("workers:"), "{text}");
        assert!(text.contains("w0: events=1 batches=1"), "{text}");
        assert!(text.contains("busy=2.000ms idle=1.000ms"), "{text}");
        assert!(
            text.contains("-- reset: discarded rounds=7 words=99"),
            "{text}"
        );
    }

    #[test]
    fn duplicate_warnings_render_once_with_process_counts() {
        let sink = MemorySink::new();
        let warning = Event::ConfigWarning {
            owner: "cc-transport".to_string(),
            var: "CC_TRANSPORT",
            raw: "banana".to_string(),
            expected: "names".to_string(),
            using: "inmemory".to_string(),
        };
        sink.record(&warning);
        for worker in 0..2 {
            sink.record(&Event::Worker {
                worker,
                event: Box::new(warning.clone()),
            });
        }
        let text = RoundTimeline::from_snapshot(&sink.snapshot()).to_string();
        assert_eq!(
            text.matches("ignoring unrecognised CC_TRANSPORT").count(),
            1,
            "one footer line per knob: {text}"
        );
        assert!(text.contains("[x3 processes]"), "{text}");
    }

    #[test]
    fn histogram_rendering_marks_empty_and_scaled_buckets() {
        let mut h = LinkHistogram::default();
        assert_eq!(render_hist(&h), "-");
        h.add(1); // bucket 0
        h.add(8); // bucket 3
        h.add(8);
        let s = render_hist(&h);
        assert_eq!(s.len(), 4, "{s}");
        assert!(s.chars().nth(1) == Some('_') && s.chars().nth(2) == Some('_'));
        assert_eq!(s.chars().last(), Some('#'));
    }
}
