//! Human-readable rendering of a capture: one line per engine/transport
//! round from the recent-event ring, plus aggregate footers.

use std::fmt;

use crate::event::{Event, LinkHistogram};
use crate::sink::MemorySnapshot;

/// A renderable timeline built from a [`MemorySnapshot`]. `Display` prints
/// per-round lines (from the bounded recent-event ring, so very long
/// captures show only the tail) followed by phase and transport totals.
#[derive(Debug, Clone)]
pub struct RoundTimeline {
    snapshot: MemorySnapshot,
}

impl RoundTimeline {
    /// Wraps a snapshot for rendering.
    #[must_use]
    pub fn from_snapshot(snapshot: &MemorySnapshot) -> Self {
        Self {
            snapshot: snapshot.clone(),
        }
    }
}

/// Compact sparkline-style rendering of a link histogram: one glyph per
/// non-empty leading range, scaled to the largest bucket.
fn render_hist(hist: &LinkHistogram) -> String {
    const GLYPHS: [char; 5] = ['.', ':', '+', '*', '#'];
    let top = hist.buckets.iter().copied().max().unwrap_or(0);
    if top == 0 {
        return "-".to_string();
    }
    let last = hist.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
    hist.buckets[..=last]
        .iter()
        .map(|&b| {
            if b == 0 {
                '_'
            } else {
                GLYPHS[((b * GLYPHS.len() as u64).div_ceil(top)) as usize - 1]
            }
        })
        .collect()
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

impl fmt::Display for RoundTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = &self.snapshot;
        if snap.dropped > 0 {
            writeln!(
                f,
                "(timeline tail: {} earlier events dropped from the ring)",
                snap.dropped
            )?;
        }
        for event in &snap.recent {
            match event {
                Event::PhaseStart { name } => writeln!(f, "phase {name} {{")?,
                Event::PhaseEnd {
                    name,
                    rounds,
                    words,
                    wall_ns,
                } => writeln!(
                    f,
                    "}} phase {name}: rounds={rounds} words={words} wall={:.3}ms",
                    ms(*wall_ns)
                )?,
                Event::EngineRound {
                    round,
                    live,
                    step_ns,
                    barrier_ns,
                    rounds,
                    words,
                } => writeln!(
                    f,
                    "  engine round {round:>4}: live={live} step={:.3}ms barrier={:.3}ms \
                     rounds={rounds} words={words}",
                    ms(*step_ns),
                    ms(*barrier_ns)
                )?,
                Event::TransportRound {
                    backend,
                    epoch,
                    links,
                    words,
                    max_link,
                    mean_link,
                    barrier_ns,
                    hist,
                } => writeln!(
                    f,
                    "  {backend} epoch {epoch:>4}: links={links} words={words} \
                     max={max_link} mean={mean_link:.1} barrier={:.3}ms hist=[{}]",
                    ms(*barrier_ns),
                    render_hist(hist)
                )?,
                Event::FrameBatch {
                    backend,
                    frames,
                    bytes,
                } => writeln!(f, "  {backend} batch: frames={frames} bytes={bytes}")?,
                Event::ResidentRound {
                    backend,
                    epoch,
                    live,
                    peer_bytes,
                    orchestrator_bytes,
                } => writeln!(
                    f,
                    "  {backend} resident epoch {epoch:>4}: live={live} \
                     peer_bytes={peer_bytes} orchestrator_bytes={orchestrator_bytes}"
                )?,
                Event::NetsimRound {
                    profile,
                    epoch,
                    links,
                    sim_ns,
                    retransmits,
                    stragglers,
                } => writeln!(
                    f,
                    "  netsim[{profile}] epoch {epoch:>4}: links={links} sim={:.3}ms \
                     retransmits={retransmits} stragglers={stragglers}",
                    ms(*sim_ns)
                )?,
                Event::NetsimFault {
                    profile,
                    epoch,
                    node,
                    kind,
                    state_words,
                } => writeln!(
                    f,
                    "  netsim[{profile}] epoch {epoch:>4}: {kind} node {node} \
                     (state_words={state_words})"
                )?,
                Event::ConfigWarning { owner, var, .. } => {
                    writeln!(f, "  warning: {owner} ignored malformed {var}")?;
                }
                Event::Counter { .. }
                | Event::Gauge { .. }
                | Event::ExecutorDispatch { .. }
                | Event::KernelDecision { .. }
                | Event::NetsimRetransmit { .. } => {}
            }
        }

        if !snap.phases.is_empty() {
            writeln!(f, "phases:")?;
            for (name, agg) in &snap.phases {
                writeln!(
                    f,
                    "  {name}: runs={} rounds={} words={} wall={:.3}ms",
                    agg.runs,
                    agg.rounds,
                    agg.words,
                    ms(agg.wall_ns)
                )?;
            }
        }
        if snap.engine.barriers > 0 {
            writeln!(
                f,
                "engine: barriers={} step={:.3}ms barrier={:.3}ms rounds={} words={}",
                snap.engine.barriers,
                ms(snap.engine.step_ns),
                ms(snap.engine.barrier_ns),
                snap.engine.rounds,
                snap.engine.words
            )?;
        }
        if snap.dispatch.inline + snap.dispatch.dispatched > 0 {
            writeln!(
                f,
                "executor: inline={} dispatched={} pieces={}",
                snap.dispatch.inline, snap.dispatch.dispatched, snap.dispatch.pieces
            )?;
        }
        for (backend, agg) in &snap.transports {
            let mean_skew = if agg.rounds > 0 {
                agg.skew_sum / agg.rounds as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "{backend}: rounds={} words={} max_link={} skew(max/mean)={:.2}/{:.2} \
                 barrier={:.3}ms batches={} hist=[{}]",
                agg.rounds,
                agg.words,
                agg.max_link,
                agg.max_skew,
                mean_skew,
                ms(agg.barrier_ns),
                agg.frame_batches,
                render_hist(&agg.hist)
            )?;
        }
        if snap.netsim.rounds > 0 {
            writeln!(
                f,
                "netsim: rounds={} sim={:.3}ms retransmits={} stragglers={} \
                 faults={} recoveries={}",
                snap.netsim.rounds,
                ms(snap.netsim.sim_ns),
                snap.netsim.retransmits,
                snap.netsim.stragglers,
                snap.netsim.faults,
                snap.netsim.recoveries
            )?;
        }
        for (name, value) in &snap.gauges {
            writeln!(f, "gauge {name} = {value}")?;
        }
        if let Some(warns) = snap.counters.get("config_warnings") {
            writeln!(f, "config warnings: {warns}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, TelemetrySink};

    #[test]
    fn timeline_renders_rounds_phases_and_totals() {
        let sink = MemorySink::new();
        sink.record(&Event::PhaseStart {
            name: "triangles".to_string(),
        });
        sink.record(&Event::EngineRound {
            round: 0,
            live: 8,
            step_ns: 1_500_000,
            barrier_ns: 250_000,
            rounds: 2,
            words: 64,
        });
        let mut hist = LinkHistogram::default();
        hist.add(8);
        hist.add(2);
        sink.record(&Event::TransportRound {
            backend: "inmemory",
            epoch: 0,
            links: 2,
            words: 10,
            max_link: 8,
            mean_link: 5.0,
            barrier_ns: 90_000,
            hist,
        });
        sink.record(&Event::PhaseEnd {
            name: "triangles".to_string(),
            rounds: 2,
            words: 64,
            wall_ns: 2_000_000,
        });
        sink.record(&Event::Gauge {
            name: "service_cache_entries",
            value: 3.0,
        });

        let text = RoundTimeline::from_snapshot(&sink.snapshot()).to_string();
        assert!(text.contains("phase triangles {"), "{text}");
        assert!(text.contains("engine round    0"), "{text}");
        assert!(text.contains("inmemory epoch    0"), "{text}");
        assert!(text.contains("phases:"), "{text}");
        assert!(text.contains("gauge service_cache_entries = 3"), "{text}");
    }

    #[test]
    fn histogram_rendering_marks_empty_and_scaled_buckets() {
        let mut h = LinkHistogram::default();
        assert_eq!(render_hist(&h), "-");
        h.add(1); // bucket 0
        h.add(8); // bucket 3
        h.add(8);
        let s = render_hist(&h);
        assert_eq!(s.len(), 4, "{s}");
        assert!(s.chars().nth(1) == Some('_') && s.chars().nth(2) == Some('_'));
        assert_eq!(s.chars().last(), Some('#'));
    }
}
