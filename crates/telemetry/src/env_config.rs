//! One shared environment-knob parser for every `CC_*` configuration
//! variable.
//!
//! Several layers read their defaults from the environment — `CC_EXECUTOR`
//! (execution backend), `CC_EXEC_CUTOVER` (small-`n` inline threshold),
//! `CC_TRANSPORT` (message fabric), `CC_SERVICE` (query-serving scheduler),
//! `CC_TRACE` (this crate's own trace level) — and all of them want the
//! same contract:
//!
//! * **unset** means "use the fallback", silently;
//! * a **parseable** value wins;
//! * a **malformed** value is a misconfiguration, not a preference for the
//!   default: it is reported once per process *per variable*, and then the
//!   fallback is used.
//!
//! This module lives in `cc-telemetry` (the bottom of the crate stack) so
//! the warning path can flow through the telemetry sink: when the global
//! [`crate::Telemetry`] is installed and enabled, a malformed value becomes
//! an [`Event::ConfigWarning`] plus a `config_warnings` counter increment in
//! the capture; otherwise it falls back to stderr exactly as before.
//! `cc-runtime` re-exports it as `cc_runtime::env_config`, so existing call
//! sites are unchanged.
//!
//! [`Event::ConfigWarning`]: crate::Event::ConfigWarning

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::event::Event;
use crate::TraceLevel;

/// Resolves an environment spec against a parser without touching the
/// environment: `None` (variable unset) resolves to the fallback, a
/// parseable value to its parse, and a malformed value to an `Err` carrying
/// the raw spec so the caller can report the misconfiguration instead of
/// swallowing it.
pub fn resolve<T>(
    spec: Option<&str>,
    fallback: T,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<T, String> {
    match spec {
        None => Ok(fallback),
        Some(raw) => parse(raw).ok_or_else(|| raw.to_string()),
    }
}

/// Reads `var` from the process environment and parses it with `parse`,
/// falling back to `fallback` when the variable is unset. A value `parse`
/// rejects is reported once per process per variable ([`warn_once`]) before
/// falling back — silently running with the wrong configuration is how CI
/// lanes stop testing what they claim to.
///
/// `owner` names the reporting crate (`"cc-runtime"`, `"cc-transport"`, …)
/// and `expected` describes the accepted grammar for the warning text.
pub fn from_env_or<T: fmt::Debug>(
    owner: &str,
    var: &'static str,
    expected: &str,
    fallback: T,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    match std::env::var(var).ok() {
        None => fallback,
        Some(raw) => match parse(&raw) {
            Some(v) => v,
            None => {
                warn_once(owner, var, &raw, expected, &format!("{fallback:?}"));
                fallback
            }
        },
    }
}

/// Registry of variables whose malformed values were already reported, so
/// each knob warns at most once per process no matter how many executors,
/// transports, or services are constructed.
fn warned_vars() -> &'static Mutex<BTreeSet<&'static str>> {
    static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Inserts `var` into the once-per-process registry; `true` means this is
/// the first report for the variable and the warning should be delivered.
fn first_report(var: &'static str) -> bool {
    warned_vars()
        .lock()
        .expect("env warning registry")
        .insert(var)
}

/// Reports a malformed environment value once per process per variable.
/// When the global telemetry handle is already installed and enabled at
/// [`TraceLevel::Summary`], the warning is emitted into the sink as an
/// [`Event::ConfigWarning`] and the `config_warnings` counter is bumped;
/// otherwise it prints to stderr. Exposed for callers whose fallback
/// construction does not fit [`from_env_or`].
///
/// [`Event::ConfigWarning`]: crate::Event::ConfigWarning
pub fn warn_once(owner: &str, var: &'static str, raw: &str, expected: &str, using: &str) {
    if !first_report(var) {
        return;
    }
    // Deliberately `global_if_initialised`, not `global()`: a warning fired
    // *while* `Telemetry::from_env` is initialising the global (e.g. some
    // other knob parsed during sink construction) must not re-enter the
    // `OnceLock` initialiser.
    let delivered = crate::global_if_initialised().is_some_and(|tel| {
        if !tel.enabled(TraceLevel::Summary) {
            return false;
        }
        tel.emit(TraceLevel::Summary, || Event::ConfigWarning {
            owner: owner.to_string(),
            var,
            raw: raw.to_string(),
            expected: expected.to_string(),
            using: using.to_string(),
        });
        tel.emit(TraceLevel::Summary, || Event::Counter {
            name: "config_warnings",
            delta: 1,
        });
        true
    });
    if !delivered {
        eprintln!(
            "{owner}: ignoring unrecognised {var}={raw:?} (expected {expected}); using {using}"
        );
    }
}

/// Stderr-only variant of [`warn_once`], for the one caller that runs
/// *inside* global-telemetry initialisation ([`crate::Telemetry::from_env`]
/// reporting a malformed `CC_TRACE`): it shares the once-per-process
/// registry but never consults the global handle.
pub fn warn_once_stderr(owner: &str, var: &'static str, raw: &str, expected: &str, using: &str) {
    if first_report(var) {
        eprintln!(
            "{owner}: ignoring unrecognised {var}={raw:?} (expected {expected}); using {using}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The generic resolution contract, ported from the per-crate copies
    // (`resolve_cutover` in the executor, `TransportKind::resolve` in the
    // transport), which are now thin wrappers over this helper.

    #[test]
    fn unset_specs_resolve_to_the_fallback_silently() {
        assert_eq!(resolve(None, 96usize, |r| r.parse().ok()), Ok(96));
        assert_eq!(resolve(None, "fb", |_| Some("parsed")), Ok("fb"));
    }

    #[test]
    fn parseable_specs_win_over_the_fallback() {
        assert_eq!(resolve(Some("0"), 96usize, |r| r.parse().ok()), Ok(0));
        assert_eq!(resolve(Some("128"), 96usize, |r| r.parse().ok()), Ok(128));
    }

    #[test]
    fn malformed_specs_surface_as_errors_carrying_the_raw_value() {
        // The historical bug class this guards: `parallel:banana` silently
        // meaning "machine-sized", `socket:banana` silently meaning
        // "default workers". A rejected spec must never resolve silently.
        let parse = |r: &str| r.parse::<usize>().ok();
        assert_eq!(resolve(Some("banana"), 96, parse), Err("banana".into()));
        assert_eq!(resolve(Some("-3"), 96, parse), Err("-3".into()));
        assert_eq!(resolve(Some(""), 96, parse), Err(String::new()));
        assert_eq!(resolve(Some("96ms"), 96, parse), Err("96ms".into()));
    }

    #[test]
    fn warning_registry_fires_once_per_variable() {
        // `warn_once` only delivers on first insertion; the registry itself
        // is the observable contract (stderr is not capturable here).
        let before = warned_vars().lock().unwrap().contains("CC_TEST_VAR");
        assert!(!before, "test variable must start unreported");
        warn_once("cc-runtime", "CC_TEST_VAR", "junk", "anything", "default");
        warn_once("cc-runtime", "CC_TEST_VAR", "junk2", "anything", "default");
        assert!(warned_vars().lock().unwrap().contains("CC_TEST_VAR"));
    }

    #[test]
    fn stderr_variant_shares_the_registry() {
        warn_once_stderr(
            "cc-telemetry",
            "CC_TEST_VAR_2",
            "junk",
            "anything",
            "default",
        );
        assert!(warned_vars().lock().unwrap().contains("CC_TEST_VAR_2"));
        // A later sink-routed warn for the same variable is suppressed.
        warn_once(
            "cc-telemetry",
            "CC_TEST_VAR_2",
            "junk",
            "anything",
            "default",
        );
    }
}
