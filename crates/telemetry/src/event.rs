//! The structured events instrumented layers emit.

/// Power-of-two histogram of per-link word counts within one transport
/// round: bucket `i` counts links that carried `w` words with
/// `floor(log2(w)) == i` (clamped to the last bucket), so bucket 0 is
/// single-word links, bucket 3 is links carrying 8–15 words, and so on.
/// Merging across rounds is element-wise addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkHistogram {
    /// `buckets[i]` — links whose word count lies in `[2^i, 2^(i+1))`.
    pub buckets: [u64; Self::BUCKETS],
}

impl LinkHistogram {
    /// Number of buckets; the last bucket absorbs everything at or above
    /// `2^(BUCKETS-1)` words.
    pub const BUCKETS: usize = 16;

    /// Counts one link that carried `words` words (zero-word links are
    /// never charged and never counted).
    pub fn add(&mut self, words: u64) {
        if words == 0 {
            return;
        }
        let bucket = (63 - words.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LinkHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total links counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// One structured observation from an instrumented layer. Events are data,
/// not behaviour: sinks aggregate or serialise them, and nothing in the
/// simulation ever reads one back.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A malformed `CC_*` environment value was ignored (the
    /// [`crate::env_config::warn_once`] contract routed through the sink).
    ConfigWarning {
        /// Reporting crate (`"cc-runtime"`, `"cc-transport"`, …).
        owner: String,
        /// The environment variable.
        var: &'static str,
        /// The rejected raw value.
        raw: String,
        /// The accepted grammar.
        expected: String,
        /// The fallback that was used instead.
        using: String,
    },
    /// A named monotone counter increment.
    Counter {
        /// Counter name (aggregated by name in the memory sink).
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// A named gauge observation (last value wins in the memory sink).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// A clique accounting phase opened ([`TraceLevel::Summary`]).
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    PhaseStart {
        /// Phase name.
        name: String,
    },
    /// A clique accounting phase closed, with the rounds/words charged to
    /// the whole clique while it ran and its own wall-clock
    /// ([`TraceLevel::Summary`]).
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    PhaseEnd {
        /// Phase name.
        name: String,
        /// Link-level rounds charged while the phase was open.
        rounds: u64,
        /// Words delivered while the phase was open.
        words: u64,
        /// Wall-clock the phase body took.
        wall_ns: u64,
    },
    /// One engine round barrier ([`TraceLevel::Rounds`]): node stepping
    /// wall-clock, barrier (delivery) wall-clock, and the round's link
    /// accounting.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    EngineRound {
        /// Engine round index (0-based).
        round: u64,
        /// Nodes still live entering this round.
        live: usize,
        /// Wall-clock of stepping all live nodes.
        step_ns: u64,
        /// Wall-clock of the fabric barrier (merge + deliver + account).
        barrier_ns: u64,
        /// Link-level rounds this barrier charged (the max per-link load).
        rounds: u64,
        /// Words delivered at this barrier.
        words: u64,
    },
    /// One executor fan-out decision ([`TraceLevel::Full`]): how many
    /// independent pieces were queued and whether they dispatched to worker
    /// threads or ran inline under the `CC_EXEC_CUTOVER` heuristic.
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    ExecutorDispatch {
        /// Independent pieces in the job (the dispatch queue depth).
        pieces: usize,
        /// Worker threads used; `1` means the job ran inline.
        threads: usize,
    },
    /// One node-local kernel dispatch decision ([`TraceLevel::Full`]): which
    /// multiply kernel the `CC_KERNEL` selection chose for a local product —
    /// the local-compute mirror of [`Event::ExecutorDispatch`]. Also carries
    /// the executor's probe-derived cutover (as `kernel = "probe"`,
    /// `op = "exec_cutover"`, `n` = chosen cutover) when self-tuning runs.
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    KernelDecision {
        /// Kernel actually used (`"naive"`, `"blocked"`, `"strassen"`,
        /// `"bitset"`, or `"probe"` for the cutover micro-probe).
        kernel: &'static str,
        /// Operation dispatched (`"mul_i64"`, `"mul_bool"`,
        /// `"exec_cutover"`).
        op: &'static str,
        /// Problem size (output rows), or the probed cutover value.
        n: usize,
        /// Tile edge in effect (`0` when tiling is not involved).
        tile: usize,
    },
    /// One transport round barrier ([`TraceLevel::Rounds`]): per-link load
    /// distribution and the barrier wait (rendezvous) wall-clock.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    TransportRound {
        /// Backend name (`"inmemory"`, `"channel"`, `"socket"`).
        backend: &'static str,
        /// Barrier epoch this round committed.
        epoch: u64,
        /// Charged links this round.
        links: usize,
        /// Total words across all links.
        words: u64,
        /// Heaviest link (the round cost).
        max_link: u64,
        /// Mean words per charged link.
        mean_link: f64,
        /// Wall-clock of the barrier (ship + rendezvous + reassembly).
        barrier_ns: u64,
        /// Per-link word-count histogram.
        hist: LinkHistogram,
    },
    /// One coalesced frame batch shipped by a batching backend
    /// ([`TraceLevel::Full`]).
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    FrameBatch {
        /// Backend name.
        backend: &'static str,
        /// Frames coalesced into the batch.
        frames: usize,
        /// Encoded batch size in bytes.
        bytes: usize,
    },
    /// One program-resident round barrier ([`TraceLevel::Rounds`]): the
    /// workers stepped their shards and exchanged payloads peer-to-peer;
    /// only the commit tokens crossed the orchestrator. The split between
    /// `peer_bytes` and `orchestrator_bytes` is the star-vs-clique
    /// accounting the peer-resident refactor exists to move.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    ResidentRound {
        /// Backend name (`"tcp"`).
        backend: &'static str,
        /// Barrier epoch this round committed.
        epoch: u64,
        /// Nodes still live after this round's step.
        live: u64,
        /// Payload bytes exchanged worker→worker this round.
        peer_bytes: u64,
        /// Payload bytes routed through the orchestrator this round
        /// (`0` by construction in resident mode).
        orchestrator_bytes: u64,
    },
    /// One network-conditioned round barrier ([`TraceLevel::Rounds`]): the
    /// netsim wrapper's per-round aggregate — simulated completion time
    /// (the max over delivering links, retransmits included) and how many
    /// links retransmitted or straggled.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    NetsimRound {
        /// Conditioning profile name (`"lan"`, `"wan"`, `"lossy"`,
        /// `"flaky-node"`).
        profile: &'static str,
        /// Barrier epoch this round committed.
        epoch: u64,
        /// Charged links this round.
        links: usize,
        /// Simulated round completion time: the slowest link's delivery
        /// time in simulated nanoseconds.
        sim_ns: u64,
        /// Simulated retransmissions across all links this round.
        retransmits: u64,
        /// Links hit by straggler injection this round.
        stragglers: u64,
    },
    /// One lossy link's simulated retransmit sequence within a round
    /// ([`TraceLevel::Full`]).
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    NetsimRetransmit {
        /// Conditioning profile name.
        profile: &'static str,
        /// Barrier epoch the retransmits happened in.
        epoch: u64,
        /// Link source node.
        src: usize,
        /// Link destination node.
        dst: usize,
        /// Delivery attempts the link needed (`2` means one retransmit).
        attempts: u32,
    },
    /// One injected node fault or its recovery ([`TraceLevel::Summary`]).
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    NetsimFault {
        /// Conditioning profile name.
        profile: &'static str,
        /// Barrier epoch the fault was injected after.
        epoch: u64,
        /// The crashed / recovered node.
        node: usize,
        /// `"crash"` or `"recover"`.
        kind: &'static str,
        /// Words of serialized program state re-shipped (`0` for crashes;
        /// recoveries carry the checkpoint size).
        state_words: usize,
    },
    /// An event captured inside a worker process and merged into the
    /// orchestrator's stream with per-process attribution
    /// ([`crate::Telemetry::merge_worker`]). Wrapping — instead of a
    /// `worker_id` on every variant — keeps orchestrator-emitted events
    /// and worker-emitted events structurally distinct, so aggregates can
    /// attribute without double counting.
    Worker {
        /// Worker process index (the transport shard id).
        worker: u32,
        /// The event exactly as the worker emitted it.
        event: Box<Event>,
    },
    /// A warm-pool checkout boundary ([`TraceLevel::Summary`]): the clique
    /// was reset for reuse, discarding the accounting totals recorded here.
    /// Delimits phases from different checkouts in long captures.
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    Reset {
        /// Link-level rounds accumulated by the life being discarded.
        rounds: u64,
        /// Words accumulated by the life being discarded.
        words: u64,
        /// Fabric barrier epoch at reset (epochs keep counting across
        /// resets).
        epoch: u64,
    },
    /// One worker's lane through one barrier ([`TraceLevel::Rounds`]),
    /// measured by the orchestrator's commit-collection loop: wall-clock
    /// from barrier start until this worker's commit token was read. The
    /// per-epoch maximum identifies the worker that closed the barrier
    /// (the round's critical path); the spread is straggler skew.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    BarrierLane {
        /// Backend name (`"socket"`, `"tcp"`).
        backend: &'static str,
        /// Barrier epoch the lane belongs to.
        epoch: u64,
        /// Worker process index.
        worker: u32,
        /// Wall-clock from barrier start to this worker's commit token.
        wall_ns: u64,
    },
}

/// Serialises one event as a single-line JSON object (the [`crate::JsonlSink`]
/// wire format). Hand-rolled — the workspace carries no serde — with string
/// fields escaped.
#[must_use]
pub fn event_json(event: &Event) -> String {
    match event {
        Event::ConfigWarning {
            owner,
            var,
            raw,
            expected,
            using,
        } => format!(
            "{{\"event\":\"config_warning\",\"owner\":{},\"var\":{},\"raw\":{},\
             \"expected\":{},\"using\":{}}}",
            js(owner),
            js(var),
            js(raw),
            js(expected),
            js(using)
        ),
        Event::Counter { name, delta } => {
            format!(
                "{{\"event\":\"counter\",\"name\":{},\"delta\":{delta}}}",
                js(name)
            )
        }
        Event::Gauge { name, value } => {
            format!(
                "{{\"event\":\"gauge\",\"name\":{},\"value\":{value}}}",
                js(name)
            )
        }
        Event::PhaseStart { name } => {
            format!("{{\"event\":\"phase_start\",\"name\":{}}}", js(name))
        }
        Event::PhaseEnd {
            name,
            rounds,
            words,
            wall_ns,
        } => format!(
            "{{\"event\":\"phase_end\",\"name\":{},\"rounds\":{rounds},\"words\":{words},\
             \"wall_ns\":{wall_ns}}}",
            js(name)
        ),
        Event::EngineRound {
            round,
            live,
            step_ns,
            barrier_ns,
            rounds,
            words,
        } => format!(
            "{{\"event\":\"engine_round\",\"round\":{round},\"live\":{live},\
             \"step_ns\":{step_ns},\"barrier_ns\":{barrier_ns},\"rounds\":{rounds},\
             \"words\":{words}}}"
        ),
        Event::ExecutorDispatch { pieces, threads } => {
            format!("{{\"event\":\"executor_dispatch\",\"pieces\":{pieces},\"threads\":{threads}}}")
        }
        Event::KernelDecision {
            kernel,
            op,
            n,
            tile,
        } => format!(
            "{{\"event\":\"kernel_decision\",\"kernel\":{},\"op\":{},\"n\":{n},\"tile\":{tile}}}",
            js(kernel),
            js(op)
        ),
        Event::TransportRound {
            backend,
            epoch,
            links,
            words,
            max_link,
            mean_link,
            barrier_ns,
            hist,
        } => {
            let buckets: Vec<String> = hist.buckets.iter().map(u64::to_string).collect();
            format!(
                "{{\"event\":\"transport_round\",\"backend\":{},\"epoch\":{epoch},\
                 \"links\":{links},\"words\":{words},\"max_link\":{max_link},\
                 \"mean_link\":{mean_link},\"barrier_ns\":{barrier_ns},\
                 \"hist\":[{}]}}",
                js(backend),
                buckets.join(",")
            )
        }
        Event::FrameBatch {
            backend,
            frames,
            bytes,
        } => format!(
            "{{\"event\":\"frame_batch\",\"backend\":{},\"frames\":{frames},\"bytes\":{bytes}}}",
            js(backend)
        ),
        Event::ResidentRound {
            backend,
            epoch,
            live,
            peer_bytes,
            orchestrator_bytes,
        } => format!(
            "{{\"event\":\"resident_round\",\"backend\":{},\"epoch\":{epoch},\"live\":{live},\
             \"peer_bytes\":{peer_bytes},\"orchestrator_bytes\":{orchestrator_bytes}}}",
            js(backend)
        ),
        Event::NetsimRound {
            profile,
            epoch,
            links,
            sim_ns,
            retransmits,
            stragglers,
        } => format!(
            "{{\"event\":\"netsim_round\",\"profile\":{},\"epoch\":{epoch},\"links\":{links},\
             \"sim_ns\":{sim_ns},\"retransmits\":{retransmits},\"stragglers\":{stragglers}}}",
            js(profile)
        ),
        Event::NetsimRetransmit {
            profile,
            epoch,
            src,
            dst,
            attempts,
        } => format!(
            "{{\"event\":\"netsim_retransmit\",\"profile\":{},\"epoch\":{epoch},\"src\":{src},\
             \"dst\":{dst},\"attempts\":{attempts}}}",
            js(profile)
        ),
        Event::NetsimFault {
            profile,
            epoch,
            node,
            kind,
            state_words,
        } => format!(
            "{{\"event\":\"netsim_fault\",\"profile\":{},\"epoch\":{epoch},\"node\":{node},\
             \"kind\":{},\"state_words\":{state_words}}}",
            js(profile),
            js(kind)
        ),
        Event::Worker { worker, event } => format!(
            "{{\"event\":\"worker\",\"worker\":{worker},\"inner\":{}}}",
            event_json(event)
        ),
        Event::Reset {
            rounds,
            words,
            epoch,
        } => {
            format!(
                "{{\"event\":\"reset\",\"rounds\":{rounds},\"words\":{words},\"epoch\":{epoch}}}"
            )
        }
        Event::BarrierLane {
            backend,
            epoch,
            worker,
            wall_ns,
        } => format!(
            "{{\"event\":\"barrier_lane\",\"backend\":{},\"epoch\":{epoch},\"worker\":{worker},\
             \"wall_ns\":{wall_ns}}}",
            js(backend)
        ),
    }
}

/// Parses one [`event_json`] line back into an [`Event`] — the merge half
/// of the distributed-capture wire format (workers ship `event_json` lines
/// inside `Frame::Telemetry`; the orchestrator and `cc-report --replay`
/// parse them back). Hand-rolled like the writer; returns `None` for
/// malformed lines or unknown event names rather than failing the run —
/// telemetry stays observer-only even against a corrupt capture.
#[must_use]
pub fn event_from_json(line: &str) -> Option<Event> {
    let fields = parse_object(line.trim())?;
    let kind = fields.str_field("event")?;
    let event = match kind.as_str() {
        "config_warning" => Event::ConfigWarning {
            owner: fields.str_field("owner")?,
            var: intern(&fields.str_field("var")?),
            raw: fields.str_field("raw")?,
            expected: fields.str_field("expected")?,
            using: fields.str_field("using")?,
        },
        "counter" => Event::Counter {
            name: intern(&fields.str_field("name")?),
            delta: fields.u64_field("delta")?,
        },
        "gauge" => Event::Gauge {
            name: intern(&fields.str_field("name")?),
            value: fields.f64_field("value")?,
        },
        "phase_start" => Event::PhaseStart {
            name: fields.str_field("name")?,
        },
        "phase_end" => Event::PhaseEnd {
            name: fields.str_field("name")?,
            rounds: fields.u64_field("rounds")?,
            words: fields.u64_field("words")?,
            wall_ns: fields.u64_field("wall_ns")?,
        },
        "engine_round" => Event::EngineRound {
            round: fields.u64_field("round")?,
            live: fields.usize_field("live")?,
            step_ns: fields.u64_field("step_ns")?,
            barrier_ns: fields.u64_field("barrier_ns")?,
            rounds: fields.u64_field("rounds")?,
            words: fields.u64_field("words")?,
        },
        "executor_dispatch" => Event::ExecutorDispatch {
            pieces: fields.usize_field("pieces")?,
            threads: fields.usize_field("threads")?,
        },
        "kernel_decision" => Event::KernelDecision {
            kernel: intern(&fields.str_field("kernel")?),
            op: intern(&fields.str_field("op")?),
            n: fields.usize_field("n")?,
            tile: fields.usize_field("tile")?,
        },
        "transport_round" => {
            let buckets = fields.array_field("hist")?;
            if buckets.len() != LinkHistogram::BUCKETS {
                return None;
            }
            let mut hist = LinkHistogram::default();
            hist.buckets.copy_from_slice(&buckets);
            Event::TransportRound {
                backend: intern(&fields.str_field("backend")?),
                epoch: fields.u64_field("epoch")?,
                links: fields.usize_field("links")?,
                words: fields.u64_field("words")?,
                max_link: fields.u64_field("max_link")?,
                mean_link: fields.f64_field("mean_link")?,
                barrier_ns: fields.u64_field("barrier_ns")?,
                hist,
            }
        }
        "frame_batch" => Event::FrameBatch {
            backend: intern(&fields.str_field("backend")?),
            frames: fields.usize_field("frames")?,
            bytes: fields.usize_field("bytes")?,
        },
        "resident_round" => Event::ResidentRound {
            backend: intern(&fields.str_field("backend")?),
            epoch: fields.u64_field("epoch")?,
            live: fields.u64_field("live")?,
            peer_bytes: fields.u64_field("peer_bytes")?,
            orchestrator_bytes: fields.u64_field("orchestrator_bytes")?,
        },
        "netsim_round" => Event::NetsimRound {
            profile: intern(&fields.str_field("profile")?),
            epoch: fields.u64_field("epoch")?,
            links: fields.usize_field("links")?,
            sim_ns: fields.u64_field("sim_ns")?,
            retransmits: fields.u64_field("retransmits")?,
            stragglers: fields.u64_field("stragglers")?,
        },
        "netsim_retransmit" => Event::NetsimRetransmit {
            profile: intern(&fields.str_field("profile")?),
            epoch: fields.u64_field("epoch")?,
            src: fields.usize_field("src")?,
            dst: fields.usize_field("dst")?,
            attempts: u32::try_from(fields.u64_field("attempts")?).ok()?,
        },
        "netsim_fault" => Event::NetsimFault {
            profile: intern(&fields.str_field("profile")?),
            epoch: fields.u64_field("epoch")?,
            node: fields.usize_field("node")?,
            kind: intern(&fields.str_field("kind")?),
            state_words: fields.usize_field("state_words")?,
        },
        "worker" => Event::Worker {
            worker: u32::try_from(fields.u64_field("worker")?).ok()?,
            event: Box::new(event_from_json(&fields.obj_field("inner")?)?),
        },
        "reset" => Event::Reset {
            rounds: fields.u64_field("rounds")?,
            words: fields.u64_field("words")?,
            epoch: fields.u64_field("epoch")?,
        },
        "barrier_lane" => Event::BarrierLane {
            backend: intern(&fields.str_field("backend")?),
            epoch: fields.u64_field("epoch")?,
            worker: u32::try_from(fields.u64_field("worker")?).ok()?,
            wall_ns: fields.u64_field("wall_ns")?,
        },
        _ => return None,
    };
    Some(event)
}

/// Returns a `'static` copy of `s`, deduplicated through a process-global
/// registry. Parsed events need `&'static str` fields to round-trip into
/// the same [`Event`] shape the emitting side used; the registry bounds
/// the leak to one allocation per distinct name ever parsed.
fn intern(s: &str) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    // Fast path: the names the instrumented layers actually emit.
    const KNOWN: &[&str] = &[
        "inmemory",
        "channel",
        "socket",
        "tcp",
        "lan",
        "wan",
        "lossy",
        "flaky-node",
        "naive",
        "blocked",
        "strassen",
        "bitset",
        "probe",
        "mul_i64",
        "mul_bool",
        "exec_cutover",
        "crash",
        "recover",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == s) {
        return k;
    }
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut map = REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("intern registry poisoned");
    if let Some(interned) = map.get(s) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    map.insert(s.to_string(), leaked);
    leaked
}

/// The parsed fields of one flat JSON object: raw number slices (so `u64`
/// stays exact), unescaped strings, `u64` arrays (histograms), and raw
/// nested-object text (re-parsed recursively for [`Event::Worker`]).
struct Fields {
    entries: Vec<(String, Value)>,
}

enum Value {
    Str(String),
    Num(String),
    Arr(Vec<u64>),
    Obj(String),
}

impl Fields {
    fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Option<String> {
        match self.get(key)? {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        }
    }

    fn u64_field(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn usize_field(&self, key: &str) -> Option<usize> {
        usize::try_from(self.u64_field(key)?).ok()
    }

    fn f64_field(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn array_field(&self, key: &str) -> Option<Vec<u64>> {
        match self.get(key)? {
            Value::Arr(v) => Some(v.clone()),
            _ => None,
        }
    }

    fn obj_field(&self, key: &str) -> Option<String> {
        match self.get(key)? {
            Value::Obj(raw) => Some(raw.clone()),
            _ => None,
        }
    }
}

fn parse_object(text: &str) -> Option<Fields> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None; // trailing garbage after the object
    }
    Some(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Fields> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Some(Fields { entries });
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Some(Fields { entries });
                }
                _ => return None,
            }
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos)? {
            b'"' => Some(Value::Str(self.string()?)),
            b'[' => Some(Value::Arr(self.array()?)),
            b'{' => Some(Value::Obj(self.raw_object()?)),
            _ => Some(Value::Num(self.number()?)),
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim;
                    // re-slice on char boundaries via str indexing.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        String::from_utf8(self.bytes[start..self.pos].to_vec()).ok()
    }

    fn array(&mut self) -> Option<Vec<u64>> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            out.push(self.number()?.parse().ok()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }

    /// Consumes one balanced nested object and returns its raw text
    /// (strings skipped correctly so braces inside values don't miscount).
    fn raw_object(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) != Some(&b'{') {
            return None;
        }
        let mut depth = 0usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'{' => {
                    depth += 1;
                    self.pos += 1;
                }
                b'}' => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                        return Some(raw.to_string());
                    }
                }
                b'"' => {
                    self.string()?;
                }
                _ => self.pos += 1,
            }
        }
        None
    }
}

/// Minimal JSON string quoting: escapes quotes, backslashes, and control
/// characters (config warnings carry raw environment values).
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two_ranges() {
        let mut h = LinkHistogram::default();
        h.add(0); // never charged, never counted
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(8);
        h.add(15);
        h.add(u64::MAX); // clamps into the last bucket
        assert_eq!(h.buckets[0], 1, "one single-word link");
        assert_eq!(h.buckets[1], 2, "two links in [2,4)");
        assert_eq!(h.buckets[3], 2, "two links in [8,16)");
        assert_eq!(h.buckets[LinkHistogram::BUCKETS - 1], 1);
        assert_eq!(h.total(), 6);

        let mut other = LinkHistogram::default();
        other.add(1);
        h.merge(&other);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn event_json_escapes_raw_values() {
        let line = event_json(&Event::ConfigWarning {
            owner: "cc-runtime".to_string(),
            var: "CC_EXECUTOR",
            raw: "para\"llel\\x\n".to_string(),
            expected: "names".to_string(),
            using: "Sequential".to_string(),
        });
        assert!(line.contains("\\\"llel\\\\x\\n"), "escaped: {line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('\n').count(), 0, "one line per event");
    }

    #[test]
    fn event_json_covers_every_variant() {
        let events = [
            Event::Counter {
                name: "c",
                delta: 1,
            },
            Event::Gauge {
                name: "g",
                value: 0.5,
            },
            Event::PhaseStart {
                name: "p".to_string(),
            },
            Event::PhaseEnd {
                name: "p".to_string(),
                rounds: 1,
                words: 2,
                wall_ns: 3,
            },
            Event::EngineRound {
                round: 0,
                live: 4,
                step_ns: 10,
                barrier_ns: 20,
                rounds: 1,
                words: 8,
            },
            Event::ExecutorDispatch {
                pieces: 64,
                threads: 1,
            },
            Event::KernelDecision {
                kernel: "bitset",
                op: "mul_bool",
                n: 256,
                tile: 0,
            },
            Event::TransportRound {
                backend: "inmemory",
                epoch: 7,
                links: 3,
                words: 9,
                max_link: 4,
                mean_link: 3.0,
                barrier_ns: 100,
                hist: LinkHistogram::default(),
            },
            Event::FrameBatch {
                backend: "socket",
                frames: 12,
                bytes: 4096,
            },
            Event::ResidentRound {
                backend: "tcp",
                epoch: 3,
                live: 5,
                peer_bytes: 2048,
                orchestrator_bytes: 0,
            },
            Event::NetsimRound {
                profile: "lossy",
                epoch: 2,
                links: 12,
                sim_ns: 1_500_000,
                retransmits: 3,
                stragglers: 1,
            },
            Event::NetsimRetransmit {
                profile: "lossy",
                epoch: 2,
                src: 0,
                dst: 5,
                attempts: 2,
            },
            Event::NetsimFault {
                profile: "flaky-node",
                epoch: 11,
                node: 4,
                kind: "recover",
                state_words: 64,
            },
            Event::Worker {
                worker: 2,
                event: Box::new(Event::FrameBatch {
                    backend: "tcp",
                    frames: 3,
                    bytes: 512,
                }),
            },
            Event::Reset {
                rounds: 40,
                words: 9000,
                epoch: 17,
            },
            Event::BarrierLane {
                backend: "socket",
                epoch: 5,
                worker: 1,
                wall_ns: 120_000,
            },
        ];
        for e in &events {
            let line = event_json(e);
            assert!(
                line.starts_with("{\"event\":\"") && line.ends_with('}'),
                "malformed line for {e:?}: {line}"
            );
        }
    }

    /// The distributed-capture wire format is `event_json` lines parsed
    /// back by `event_from_json`; every variant must survive the trip
    /// bit-for-bit (including a non-trivial histogram, an escaped raw
    /// value, and a nested worker wrapper).
    #[test]
    fn event_json_round_trips_through_the_parser() {
        let mut hist = LinkHistogram::default();
        hist.add(1);
        hist.add(9);
        hist.add(u64::MAX);
        let events = [
            Event::ConfigWarning {
                owner: "cc-runtime".to_string(),
                var: "CC_EXECUTOR",
                raw: "para\"llel\\x\n\u{1}".to_string(),
                expected: "sequential or parallel".to_string(),
                using: "Sequential".to_string(),
            },
            Event::Counter {
                name: "config_warnings",
                delta: 3,
            },
            Event::Gauge {
                name: "service_cache_hits",
                value: 0.125,
            },
            Event::PhaseStart {
                name: "triangles".to_string(),
            },
            Event::PhaseEnd {
                name: "triangles".to_string(),
                rounds: 12,
                words: 3456,
                wall_ns: 7_890_123,
            },
            Event::EngineRound {
                round: 4,
                live: 16,
                step_ns: 100,
                barrier_ns: 200,
                rounds: 1,
                words: 64,
            },
            Event::ExecutorDispatch {
                pieces: 64,
                threads: 4,
            },
            Event::KernelDecision {
                kernel: "bitset",
                op: "mul_bool",
                n: 256,
                tile: 64,
            },
            Event::TransportRound {
                backend: "socket",
                epoch: 7,
                links: 240,
                words: 9_999,
                max_link: 52,
                mean_link: 41.662_5,
                barrier_ns: 1_234_567,
                hist,
            },
            Event::FrameBatch {
                backend: "socket",
                frames: 17,
                bytes: 65_536,
            },
            Event::ResidentRound {
                backend: "tcp",
                epoch: 3,
                live: 5,
                peer_bytes: 2_048,
                orchestrator_bytes: 0,
            },
            Event::NetsimRound {
                profile: "lossy",
                epoch: 2,
                links: 12,
                sim_ns: 1_500_000,
                retransmits: 3,
                stragglers: 1,
            },
            Event::NetsimRetransmit {
                profile: "lossy",
                epoch: 2,
                src: 0,
                dst: 5,
                attempts: 2,
            },
            Event::NetsimFault {
                profile: "flaky-node",
                epoch: 11,
                node: 4,
                kind: "recover",
                state_words: 64,
            },
            Event::Worker {
                worker: 2,
                event: Box::new(Event::ResidentRound {
                    backend: "tcp",
                    epoch: 9,
                    live: 8,
                    peer_bytes: 4_096,
                    orchestrator_bytes: 0,
                }),
            },
            Event::Reset {
                rounds: 40,
                words: 9_000,
                epoch: 17,
            },
            Event::BarrierLane {
                backend: "tcp",
                epoch: 5,
                worker: 1,
                wall_ns: 120_000,
            },
        ];
        for e in &events {
            let line = event_json(e);
            let parsed = event_from_json(&line);
            assert_eq!(parsed.as_ref(), Some(e), "round trip failed: {line}");
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "not json",
            "{\"event\":\"no_such_event\"}",
            "{\"event\":\"counter\",\"name\":\"c\"}", // missing delta
            "{\"event\":\"counter\",\"name\":\"c\",\"delta\":1} trailing",
            "{\"event\":\"worker\",\"worker\":0,\"inner\":{\"event\":\"bogus\"}}",
            "{\"event\":\"transport_round\",\"backend\":\"socket\",\"epoch\":0,\
             \"links\":0,\"words\":0,\"max_link\":0,\"mean_link\":0,\"barrier_ns\":0,\
             \"hist\":[1,2]}", // short histogram
        ] {
            assert!(event_from_json(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn intern_returns_stable_references() {
        let a = event_from_json("{\"event\":\"counter\",\"name\":\"brand_new_name\",\"delta\":1}")
            .expect("parses");
        let b = event_from_json("{\"event\":\"counter\",\"name\":\"brand_new_name\",\"delta\":2}")
            .expect("parses");
        let (Event::Counter { name: na, .. }, Event::Counter { name: nb, .. }) = (&a, &b) else {
            panic!("wrong variants");
        };
        assert!(std::ptr::eq(*na, *nb), "same interned pointer");
    }
}
