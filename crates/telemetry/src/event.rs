//! The structured events instrumented layers emit.

/// Power-of-two histogram of per-link word counts within one transport
/// round: bucket `i` counts links that carried `w` words with
/// `floor(log2(w)) == i` (clamped to the last bucket), so bucket 0 is
/// single-word links, bucket 3 is links carrying 8–15 words, and so on.
/// Merging across rounds is element-wise addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkHistogram {
    /// `buckets[i]` — links whose word count lies in `[2^i, 2^(i+1))`.
    pub buckets: [u64; Self::BUCKETS],
}

impl LinkHistogram {
    /// Number of buckets; the last bucket absorbs everything at or above
    /// `2^(BUCKETS-1)` words.
    pub const BUCKETS: usize = 16;

    /// Counts one link that carried `words` words (zero-word links are
    /// never charged and never counted).
    pub fn add(&mut self, words: u64) {
        if words == 0 {
            return;
        }
        let bucket = (63 - words.leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LinkHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total links counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// One structured observation from an instrumented layer. Events are data,
/// not behaviour: sinks aggregate or serialise them, and nothing in the
/// simulation ever reads one back.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A malformed `CC_*` environment value was ignored (the
    /// [`crate::env_config::warn_once`] contract routed through the sink).
    ConfigWarning {
        /// Reporting crate (`"cc-runtime"`, `"cc-transport"`, …).
        owner: String,
        /// The environment variable.
        var: &'static str,
        /// The rejected raw value.
        raw: String,
        /// The accepted grammar.
        expected: String,
        /// The fallback that was used instead.
        using: String,
    },
    /// A named monotone counter increment.
    Counter {
        /// Counter name (aggregated by name in the memory sink).
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// A named gauge observation (last value wins in the memory sink).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// A clique accounting phase opened ([`TraceLevel::Summary`]).
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    PhaseStart {
        /// Phase name.
        name: String,
    },
    /// A clique accounting phase closed, with the rounds/words charged to
    /// the whole clique while it ran and its own wall-clock
    /// ([`TraceLevel::Summary`]).
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    PhaseEnd {
        /// Phase name.
        name: String,
        /// Link-level rounds charged while the phase was open.
        rounds: u64,
        /// Words delivered while the phase was open.
        words: u64,
        /// Wall-clock the phase body took.
        wall_ns: u64,
    },
    /// One engine round barrier ([`TraceLevel::Rounds`]): node stepping
    /// wall-clock, barrier (delivery) wall-clock, and the round's link
    /// accounting.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    EngineRound {
        /// Engine round index (0-based).
        round: u64,
        /// Nodes still live entering this round.
        live: usize,
        /// Wall-clock of stepping all live nodes.
        step_ns: u64,
        /// Wall-clock of the fabric barrier (merge + deliver + account).
        barrier_ns: u64,
        /// Link-level rounds this barrier charged (the max per-link load).
        rounds: u64,
        /// Words delivered at this barrier.
        words: u64,
    },
    /// One executor fan-out decision ([`TraceLevel::Full`]): how many
    /// independent pieces were queued and whether they dispatched to worker
    /// threads or ran inline under the `CC_EXEC_CUTOVER` heuristic.
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    ExecutorDispatch {
        /// Independent pieces in the job (the dispatch queue depth).
        pieces: usize,
        /// Worker threads used; `1` means the job ran inline.
        threads: usize,
    },
    /// One node-local kernel dispatch decision ([`TraceLevel::Full`]): which
    /// multiply kernel the `CC_KERNEL` selection chose for a local product —
    /// the local-compute mirror of [`Event::ExecutorDispatch`]. Also carries
    /// the executor's probe-derived cutover (as `kernel = "probe"`,
    /// `op = "exec_cutover"`, `n` = chosen cutover) when self-tuning runs.
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    KernelDecision {
        /// Kernel actually used (`"naive"`, `"blocked"`, `"strassen"`,
        /// `"bitset"`, or `"probe"` for the cutover micro-probe).
        kernel: &'static str,
        /// Operation dispatched (`"mul_i64"`, `"mul_bool"`,
        /// `"exec_cutover"`).
        op: &'static str,
        /// Problem size (output rows), or the probed cutover value.
        n: usize,
        /// Tile edge in effect (`0` when tiling is not involved).
        tile: usize,
    },
    /// One transport round barrier ([`TraceLevel::Rounds`]): per-link load
    /// distribution and the barrier wait (rendezvous) wall-clock.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    TransportRound {
        /// Backend name (`"inmemory"`, `"channel"`, `"socket"`).
        backend: &'static str,
        /// Barrier epoch this round committed.
        epoch: u64,
        /// Charged links this round.
        links: usize,
        /// Total words across all links.
        words: u64,
        /// Heaviest link (the round cost).
        max_link: u64,
        /// Mean words per charged link.
        mean_link: f64,
        /// Wall-clock of the barrier (ship + rendezvous + reassembly).
        barrier_ns: u64,
        /// Per-link word-count histogram.
        hist: LinkHistogram,
    },
    /// One coalesced frame batch shipped by a batching backend
    /// ([`TraceLevel::Full`]).
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    FrameBatch {
        /// Backend name.
        backend: &'static str,
        /// Frames coalesced into the batch.
        frames: usize,
        /// Encoded batch size in bytes.
        bytes: usize,
    },
    /// One program-resident round barrier ([`TraceLevel::Rounds`]): the
    /// workers stepped their shards and exchanged payloads peer-to-peer;
    /// only the commit tokens crossed the orchestrator. The split between
    /// `peer_bytes` and `orchestrator_bytes` is the star-vs-clique
    /// accounting the peer-resident refactor exists to move.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    ResidentRound {
        /// Backend name (`"tcp"`).
        backend: &'static str,
        /// Barrier epoch this round committed.
        epoch: u64,
        /// Nodes still live after this round's step.
        live: u64,
        /// Payload bytes exchanged worker→worker this round.
        peer_bytes: u64,
        /// Payload bytes routed through the orchestrator this round
        /// (`0` by construction in resident mode).
        orchestrator_bytes: u64,
    },
    /// One network-conditioned round barrier ([`TraceLevel::Rounds`]): the
    /// netsim wrapper's per-round aggregate — simulated completion time
    /// (the max over delivering links, retransmits included) and how many
    /// links retransmitted or straggled.
    ///
    /// [`TraceLevel::Rounds`]: crate::TraceLevel::Rounds
    NetsimRound {
        /// Conditioning profile name (`"lan"`, `"wan"`, `"lossy"`,
        /// `"flaky-node"`).
        profile: &'static str,
        /// Barrier epoch this round committed.
        epoch: u64,
        /// Charged links this round.
        links: usize,
        /// Simulated round completion time: the slowest link's delivery
        /// time in simulated nanoseconds.
        sim_ns: u64,
        /// Simulated retransmissions across all links this round.
        retransmits: u64,
        /// Links hit by straggler injection this round.
        stragglers: u64,
    },
    /// One lossy link's simulated retransmit sequence within a round
    /// ([`TraceLevel::Full`]).
    ///
    /// [`TraceLevel::Full`]: crate::TraceLevel::Full
    NetsimRetransmit {
        /// Conditioning profile name.
        profile: &'static str,
        /// Barrier epoch the retransmits happened in.
        epoch: u64,
        /// Link source node.
        src: usize,
        /// Link destination node.
        dst: usize,
        /// Delivery attempts the link needed (`2` means one retransmit).
        attempts: u32,
    },
    /// One injected node fault or its recovery ([`TraceLevel::Summary`]).
    ///
    /// [`TraceLevel::Summary`]: crate::TraceLevel::Summary
    NetsimFault {
        /// Conditioning profile name.
        profile: &'static str,
        /// Barrier epoch the fault was injected after.
        epoch: u64,
        /// The crashed / recovered node.
        node: usize,
        /// `"crash"` or `"recover"`.
        kind: &'static str,
        /// Words of serialized program state re-shipped (`0` for crashes;
        /// recoveries carry the checkpoint size).
        state_words: usize,
    },
}

/// Serialises one event as a single-line JSON object (the [`crate::JsonlSink`]
/// wire format). Hand-rolled — the workspace carries no serde — with string
/// fields escaped.
#[must_use]
pub fn event_json(event: &Event) -> String {
    match event {
        Event::ConfigWarning {
            owner,
            var,
            raw,
            expected,
            using,
        } => format!(
            "{{\"event\":\"config_warning\",\"owner\":{},\"var\":{},\"raw\":{},\
             \"expected\":{},\"using\":{}}}",
            js(owner),
            js(var),
            js(raw),
            js(expected),
            js(using)
        ),
        Event::Counter { name, delta } => {
            format!(
                "{{\"event\":\"counter\",\"name\":{},\"delta\":{delta}}}",
                js(name)
            )
        }
        Event::Gauge { name, value } => {
            format!(
                "{{\"event\":\"gauge\",\"name\":{},\"value\":{value}}}",
                js(name)
            )
        }
        Event::PhaseStart { name } => {
            format!("{{\"event\":\"phase_start\",\"name\":{}}}", js(name))
        }
        Event::PhaseEnd {
            name,
            rounds,
            words,
            wall_ns,
        } => format!(
            "{{\"event\":\"phase_end\",\"name\":{},\"rounds\":{rounds},\"words\":{words},\
             \"wall_ns\":{wall_ns}}}",
            js(name)
        ),
        Event::EngineRound {
            round,
            live,
            step_ns,
            barrier_ns,
            rounds,
            words,
        } => format!(
            "{{\"event\":\"engine_round\",\"round\":{round},\"live\":{live},\
             \"step_ns\":{step_ns},\"barrier_ns\":{barrier_ns},\"rounds\":{rounds},\
             \"words\":{words}}}"
        ),
        Event::ExecutorDispatch { pieces, threads } => {
            format!("{{\"event\":\"executor_dispatch\",\"pieces\":{pieces},\"threads\":{threads}}}")
        }
        Event::KernelDecision {
            kernel,
            op,
            n,
            tile,
        } => format!(
            "{{\"event\":\"kernel_decision\",\"kernel\":{},\"op\":{},\"n\":{n},\"tile\":{tile}}}",
            js(kernel),
            js(op)
        ),
        Event::TransportRound {
            backend,
            epoch,
            links,
            words,
            max_link,
            mean_link,
            barrier_ns,
            hist,
        } => {
            let buckets: Vec<String> = hist.buckets.iter().map(u64::to_string).collect();
            format!(
                "{{\"event\":\"transport_round\",\"backend\":{},\"epoch\":{epoch},\
                 \"links\":{links},\"words\":{words},\"max_link\":{max_link},\
                 \"mean_link\":{mean_link},\"barrier_ns\":{barrier_ns},\
                 \"hist\":[{}]}}",
                js(backend),
                buckets.join(",")
            )
        }
        Event::FrameBatch {
            backend,
            frames,
            bytes,
        } => format!(
            "{{\"event\":\"frame_batch\",\"backend\":{},\"frames\":{frames},\"bytes\":{bytes}}}",
            js(backend)
        ),
        Event::ResidentRound {
            backend,
            epoch,
            live,
            peer_bytes,
            orchestrator_bytes,
        } => format!(
            "{{\"event\":\"resident_round\",\"backend\":{},\"epoch\":{epoch},\"live\":{live},\
             \"peer_bytes\":{peer_bytes},\"orchestrator_bytes\":{orchestrator_bytes}}}",
            js(backend)
        ),
        Event::NetsimRound {
            profile,
            epoch,
            links,
            sim_ns,
            retransmits,
            stragglers,
        } => format!(
            "{{\"event\":\"netsim_round\",\"profile\":{},\"epoch\":{epoch},\"links\":{links},\
             \"sim_ns\":{sim_ns},\"retransmits\":{retransmits},\"stragglers\":{stragglers}}}",
            js(profile)
        ),
        Event::NetsimRetransmit {
            profile,
            epoch,
            src,
            dst,
            attempts,
        } => format!(
            "{{\"event\":\"netsim_retransmit\",\"profile\":{},\"epoch\":{epoch},\"src\":{src},\
             \"dst\":{dst},\"attempts\":{attempts}}}",
            js(profile)
        ),
        Event::NetsimFault {
            profile,
            epoch,
            node,
            kind,
            state_words,
        } => format!(
            "{{\"event\":\"netsim_fault\",\"profile\":{},\"epoch\":{epoch},\"node\":{node},\
             \"kind\":{},\"state_words\":{state_words}}}",
            js(profile),
            js(kind)
        ),
    }
}

/// Minimal JSON string quoting: escapes quotes, backslashes, and control
/// characters (config warnings carry raw environment values).
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two_ranges() {
        let mut h = LinkHistogram::default();
        h.add(0); // never charged, never counted
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(8);
        h.add(15);
        h.add(u64::MAX); // clamps into the last bucket
        assert_eq!(h.buckets[0], 1, "one single-word link");
        assert_eq!(h.buckets[1], 2, "two links in [2,4)");
        assert_eq!(h.buckets[3], 2, "two links in [8,16)");
        assert_eq!(h.buckets[LinkHistogram::BUCKETS - 1], 1);
        assert_eq!(h.total(), 6);

        let mut other = LinkHistogram::default();
        other.add(1);
        h.merge(&other);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn event_json_escapes_raw_values() {
        let line = event_json(&Event::ConfigWarning {
            owner: "cc-runtime".to_string(),
            var: "CC_EXECUTOR",
            raw: "para\"llel\\x\n".to_string(),
            expected: "names".to_string(),
            using: "Sequential".to_string(),
        });
        assert!(line.contains("\\\"llel\\\\x\\n"), "escaped: {line}");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('\n').count(), 0, "one line per event");
    }

    #[test]
    fn event_json_covers_every_variant() {
        let events = [
            Event::Counter {
                name: "c",
                delta: 1,
            },
            Event::Gauge {
                name: "g",
                value: 0.5,
            },
            Event::PhaseStart {
                name: "p".to_string(),
            },
            Event::PhaseEnd {
                name: "p".to_string(),
                rounds: 1,
                words: 2,
                wall_ns: 3,
            },
            Event::EngineRound {
                round: 0,
                live: 4,
                step_ns: 10,
                barrier_ns: 20,
                rounds: 1,
                words: 8,
            },
            Event::ExecutorDispatch {
                pieces: 64,
                threads: 1,
            },
            Event::KernelDecision {
                kernel: "bitset",
                op: "mul_bool",
                n: 256,
                tile: 0,
            },
            Event::TransportRound {
                backend: "inmemory",
                epoch: 7,
                links: 3,
                words: 9,
                max_link: 4,
                mean_link: 3.0,
                barrier_ns: 100,
                hist: LinkHistogram::default(),
            },
            Event::FrameBatch {
                backend: "socket",
                frames: 12,
                bytes: 4096,
            },
            Event::ResidentRound {
                backend: "tcp",
                epoch: 3,
                live: 5,
                peer_bytes: 2048,
                orchestrator_bytes: 0,
            },
            Event::NetsimRound {
                profile: "lossy",
                epoch: 2,
                links: 12,
                sim_ns: 1_500_000,
                retransmits: 3,
                stragglers: 1,
            },
            Event::NetsimRetransmit {
                profile: "lossy",
                epoch: 2,
                src: 0,
                dst: 5,
                attempts: 2,
            },
            Event::NetsimFault {
                profile: "flaky-node",
                epoch: 11,
                node: 4,
                kind: "recover",
                state_words: 64,
            },
        ];
        for e in &events {
            let line = event_json(e);
            assert!(
                line.starts_with("{\"event\":\"") && line.ends_with('}'),
                "malformed line for {e:?}: {line}"
            );
        }
    }
}
