//! Semiring and ring structure traits, with the Boolean and integer
//! instances.

use cc_clique::{WordReader, WordWriter};
use std::fmt::Debug;

use crate::matrix::Matrix;

/// A semiring structure over an element type.
///
/// A semiring `(S, ⊕, ⊗, 0, 1)` has a commutative, associative addition `⊕`
/// with identity `0`, an associative multiplication `⊗` with identity `1`
/// that distributes over `⊕`, and `0` annihilates under `⊗`. Instances are
/// *structure objects* (possibly carrying runtime parameters, such as the
/// degree cap of [`crate::PolyRing`]), not marker types.
///
/// The trait also fixes the wire encoding of elements ([`Semiring::write_elem`]
/// / [`Semiring::read_elem`]): the congested clique charges one word per
/// `O(log n)` bits, so wide elements (polynomials) must encode — and thereby
/// cost — proportionally many words, reproducing the paper's `b / log n`
/// factor for `b`-bit entries.
pub trait Semiring {
    /// The element type of the structure.
    type Elem: Clone + PartialEq + Debug;

    /// Additive identity.
    fn zero(&self) -> Self::Elem;

    /// Multiplicative identity.
    fn one(&self) -> Self::Elem;

    /// Semiring addition `a ⊕ b`.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Semiring multiplication `a ⊗ b`.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Returns `true` if `e` equals the additive identity.
    fn is_zero(&self, e: &Self::Elem) -> bool {
        *e == self.zero()
    }

    /// Appends the wire encoding of `e`.
    fn write_elem(&self, e: &Self::Elem, out: &mut WordWriter);

    /// Decodes one element.
    fn read_elem(&self, r: &mut WordReader<'_>) -> Self::Elem;

    /// Number of words an element occupies on the wire. Must be constant per
    /// structure instance (fixed-width encodings keep decoding oblivious).
    fn elem_width(&self) -> usize;

    /// Folds a sequence with `⊕`.
    fn sum<'a, I>(&self, iter: I) -> Self::Elem
    where
        I: IntoIterator<Item = &'a Self::Elem>,
        Self::Elem: 'a,
    {
        iter.into_iter()
            .fold(self.zero(), |acc, x| self.add(&acc, x))
    }

    /// Dense node-local matrix product `a · b` over this structure.
    ///
    /// This is the seam the pluggable local-kernel layer
    /// ([`crate::kernel`]) plugs into: the default is the schoolbook
    /// [`Matrix::mul`], and structures with specialised kernels
    /// ([`IntRing`], [`BoolSemiring`]) dispatch on the `CC_KERNEL`
    /// selection. Every implementation must return exactly what
    /// [`Matrix::mul`] returns — kernels may only change how the product is
    /// computed, never its value — so swapping kernels is invisible to
    /// results, rounds, words, and fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    #[must_use]
    fn mul_dense(&self, a: &Matrix<Self::Elem>, b: &Matrix<Self::Elem>) -> Matrix<Self::Elem>
    where
        Self: Sized,
    {
        Matrix::mul(self, a, b)
    }
}

/// A ring structure: a [`Semiring`] with additive inverses.
pub trait Ring: Semiring {
    /// Additive inverse `-a`.
    fn neg(&self, a: &Self::Elem) -> Self::Elem;

    /// Subtraction `a - b`.
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.add(a, &self.neg(b))
    }

    /// Multiplies `e` by a small integer scalar (used for the coefficients
    /// of bilinear algorithms, which are `±1` for Strassen and stay small
    /// for its tensor powers).
    fn scale(&self, coeff: i64, e: &Self::Elem) -> Self::Elem {
        let mut acc = self.zero();
        for _ in 0..coeff.unsigned_abs() {
            acc = self.add(&acc, e);
        }
        if coeff < 0 {
            self.neg(&acc)
        } else {
            acc
        }
    }
}

/// The Boolean semiring `({false, true}, ∨, ∧)`.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{BoolSemiring, Semiring};
/// let s = BoolSemiring;
/// assert_eq!(s.add(&true, &false), true);
/// assert_eq!(s.mul(&true, &false), false);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;

    fn zero(&self) -> bool {
        false
    }
    fn one(&self) -> bool {
        true
    }
    fn add(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }
    fn write_elem(&self, e: &bool, out: &mut WordWriter) {
        out.push(u64::from(*e));
    }
    fn read_elem(&self, r: &mut WordReader<'_>) -> bool {
        r.next() != 0
    }
    fn elem_width(&self) -> usize {
        1
    }
    fn mul_dense(&self, a: &Matrix<bool>, b: &Matrix<bool>) -> Matrix<bool> {
        crate::kernel::mul_bool(a, b)
    }
}

/// The ring of integers, on `i64` elements.
///
/// Arithmetic uses the standard library's `i64` operations, so overflow
/// panics in debug builds and wraps in release builds; the algorithms in
/// this workspace keep intermediate values below `n⁴ · max|entry|²`, well
/// within range for the supported clique sizes.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{IntRing, Ring, Semiring};
/// assert_eq!(IntRing.mul(&3, &-4), -12);
/// assert_eq!(IntRing.sub(&3, &5), -2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntRing;

impl Semiring for IntRing {
    type Elem = i64;

    fn zero(&self) -> i64 {
        0
    }
    fn one(&self) -> i64 {
        1
    }
    fn add(&self, a: &i64, b: &i64) -> i64 {
        a + b
    }
    fn mul(&self, a: &i64, b: &i64) -> i64 {
        a * b
    }
    fn write_elem(&self, e: &i64, out: &mut WordWriter) {
        out.push(*e as u64);
    }
    fn read_elem(&self, r: &mut WordReader<'_>) -> i64 {
        r.next() as i64
    }
    fn elem_width(&self) -> usize {
        1
    }
    fn mul_dense(&self, a: &Matrix<i64>, b: &Matrix<i64>) -> Matrix<i64> {
        crate::kernel::mul_i64(a, b)
    }
}

impl Ring for IntRing {
    fn neg(&self, a: &i64) -> i64 {
        -a
    }
    fn sub(&self, a: &i64, b: &i64) -> i64 {
        a - b
    }
    fn scale(&self, coeff: i64, e: &i64) -> i64 {
        coeff * e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bool_semiring_identities() {
        let s = BoolSemiring;
        for v in [false, true] {
            assert_eq!(s.add(&v, &s.zero()), v);
            assert_eq!(s.mul(&v, &s.one()), v);
            assert!(s.is_zero(&s.mul(&v, &s.zero())));
        }
    }

    #[test]
    fn int_ring_scale_matches_repeated_add() {
        let r = IntRing;
        // Generic default implementation vs specialized.
        for coeff in -5i64..=5 {
            let mut acc = 0;
            for _ in 0..coeff.abs() {
                acc += 7;
            }
            if coeff < 0 {
                acc = -acc;
            }
            assert_eq!(r.scale(coeff, &7), acc);
        }
    }

    #[test]
    fn sum_folds() {
        let r = IntRing;
        let vals = [1i64, 2, 3, 4];
        assert_eq!(r.sum(vals.iter()), 10);
        assert_eq!(r.sum(std::iter::empty::<&i64>()), 0);
    }

    proptest! {
        #[test]
        fn int_ring_axioms(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            let r = IntRing;
            // Associativity and commutativity of addition.
            prop_assert_eq!(r.add(&r.add(&a, &b), &c), r.add(&a, &r.add(&b, &c)));
            prop_assert_eq!(r.add(&a, &b), r.add(&b, &a));
            // Distributivity.
            prop_assert_eq!(r.mul(&a, &r.add(&b, &c)), r.add(&r.mul(&a, &b), &r.mul(&a, &c)));
            // Inverses.
            prop_assert_eq!(r.add(&a, &r.neg(&a)), 0);
        }

        #[test]
        fn bool_semiring_axioms(a: bool, b: bool, c: bool) {
            let s = BoolSemiring;
            prop_assert_eq!(s.add(&s.add(&a, &b), &c), s.add(&a, &s.add(&b, &c)));
            prop_assert_eq!(s.add(&a, &b), s.add(&b, &a));
            prop_assert_eq!(s.mul(&a, &s.add(&b, &c)), s.add(&s.mul(&a, &b), &s.mul(&a, &c)));
            prop_assert_eq!(s.mul(&a, &s.zero()), s.zero());
        }

        #[test]
        fn int_roundtrip(x in any::<i64>()) {
            let r = IntRing;
            let mut w = cc_clique::WordWriter::new();
            r.write_elem(&x, &mut w);
            let words = w.into_words();
            prop_assert_eq!(words.len(), r.elem_width());
            let mut rd = cc_clique::WordReader::new(&words);
            prop_assert_eq!(r.read_elem(&mut rd), x);
        }
    }
}
