//! The prime field `ℤ/pℤ`.
//!
//! The paper's lower-bound discussion (Corollary 24) ranges over "Booleans,
//! integers, and rationals"; having a genuinely modular ring in the test
//! matrix also guards the fast multiplication against bugs that integer
//! inputs cannot expose (negative coefficient scaling, non-trivial
//! cancellation). Elements are canonical representatives `0..p`.

use crate::semiring::{Ring, Semiring};
use cc_clique::{WordReader, WordWriter};

/// The ring (field, for prime `p`) of integers modulo `p`, on canonical
/// `u64` representatives.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{ModRing, Ring, Semiring};
/// let f7 = ModRing::new(7);
/// assert_eq!(f7.add(&5, &4), 2);
/// assert_eq!(f7.neg(&3), 4);
/// assert_eq!(f7.scale(-2, &3), 1); // -6 ≡ 1 (mod 7)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModRing {
    p: u64,
}

impl ModRing {
    /// Creates the ring `ℤ/pℤ`.
    ///
    /// # Panics
    ///
    /// Panics if `p < 2` or `p` does not fit the overflow-free range
    /// (`p ≤ 2³²`, so products of representatives fit in `u64`).
    #[must_use]
    pub fn new(p: u64) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(p <= 1 << 32, "modulus must fit 32 bits to avoid overflow");
        Self { p }
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Canonicalises an integer into `0..p`.
    #[must_use]
    pub fn reduce(&self, x: i64) -> u64 {
        x.rem_euclid(self.p as i64) as u64
    }
}

impl Semiring for ModRing {
    type Elem = u64;

    fn zero(&self) -> u64 {
        0
    }
    fn one(&self) -> u64 {
        1 % self.p
    }
    fn add(&self, a: &u64, b: &u64) -> u64 {
        debug_assert!(*a < self.p && *b < self.p, "non-canonical element");
        (a + b) % self.p
    }
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        debug_assert!(*a < self.p && *b < self.p, "non-canonical element");
        (a * b) % self.p
    }
    fn write_elem(&self, e: &u64, out: &mut WordWriter) {
        out.push(*e);
    }
    fn read_elem(&self, r: &mut WordReader<'_>) -> u64 {
        r.next()
    }
    fn elem_width(&self) -> usize {
        1
    }
}

impl Ring for ModRing {
    fn neg(&self, a: &u64) -> u64 {
        debug_assert!(*a < self.p, "non-canonical element");
        (self.p - a) % self.p
    }
    fn scale(&self, coeff: i64, e: &u64) -> u64 {
        let c = self.reduce(coeff);
        (c * e) % self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let f5 = ModRing::new(5);
        assert_eq!(f5.add(&4, &3), 2);
        assert_eq!(f5.mul(&4, &4), 1);
        assert_eq!(f5.sub(&1, &3), 3);
        assert_eq!(f5.one(), 1);
        assert_eq!(ModRing::new(2).one(), 1);
    }

    #[test]
    fn reduce_handles_negatives() {
        let f7 = ModRing::new(7);
        assert_eq!(f7.reduce(-1), 6);
        assert_eq!(f7.reduce(-14), 0);
        assert_eq!(f7.reduce(15), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_modulus_rejected() {
        let _ = ModRing::new(1);
    }

    proptest! {
        #[test]
        fn ring_axioms(p in 2u64..100, a in 0u64..100, b in 0u64..100, c in 0u64..100) {
            let r = ModRing::new(p);
            let (a, b, c) = (a % p, b % p, c % p);
            prop_assert_eq!(r.add(&a, &b), r.add(&b, &a));
            prop_assert_eq!(r.mul(&r.mul(&a, &b), &c), r.mul(&a, &r.mul(&b, &c)));
            prop_assert_eq!(
                r.mul(&a, &r.add(&b, &c)),
                r.add(&r.mul(&a, &b), &r.mul(&a, &c))
            );
            prop_assert_eq!(r.add(&a, &r.neg(&a)), 0);
            prop_assert_eq!(r.mul(&a, &r.one()), a);
        }

        #[test]
        fn scale_matches_repeated_add(p in 2u64..50, coeff in -20i64..20, e in 0u64..50) {
            let r = ModRing::new(p);
            let e = e % p;
            let mut acc = 0u64;
            for _ in 0..coeff.unsigned_abs() {
                acc = r.add(&acc, &e);
            }
            if coeff < 0 {
                acc = r.neg(&acc);
            }
            prop_assert_eq!(r.scale(coeff, &e), acc);
        }
    }
}
