//! # cc-algebra: algebraic structures for congested clique algorithms
//!
//! The algorithms of *"Algebraic Methods in the Congested Clique"* operate on
//! matrices over several algebraic structures:
//!
//! * the **Boolean semiring** (`{0,1}`, ∨, ∧) — reachability, cycle
//!   detection, Seidel's base products;
//! * the **min-plus (tropical) semiring** (`ℤ ∪ {∞}`, min, +) — distance
//!   products and all-pairs shortest paths;
//! * the **ring of integers** — fast (Strassen-style) multiplication, trace
//!   counting formulas;
//! * the **degree-capped polynomial ring** `ℤ[x]/x^cap` — the embedding of
//!   bounded distance products into ring products (Lemma 18 of the paper).
//!
//! Structures are modelled as *structure objects* implementing [`Semiring`]
//! (and [`Ring`] where subtraction exists) over an associated element type,
//! so that runtime-parameterised structures like [`PolyRing`] fit the same
//! interface. Dense [`Matrix`] values are structure-agnostic containers;
//! operations such as [`Matrix::mul`] take the structure as an argument.
//!
//! Bilinear matrix-multiplication algorithms (Strassen's 7-multiplication
//! scheme and its tensor powers) are first-class values of type
//! [`BilinearAlgorithm`], which is exactly the form the paper's fast
//! distributed multiplication (Section 2.2) consumes.
//!
//! ## Example
//!
//! ```rust
//! use cc_algebra::{BilinearAlgorithm, IntRing, Matrix};
//!
//! let strassen = BilinearAlgorithm::strassen();
//! assert_eq!((strassen.d(), strassen.m()), (2, 7));
//!
//! let a = Matrix::from_rows(&[[1i64, 2], [3, 4]]);
//! let b = Matrix::from_rows(&[[5i64, 6], [7, 8]]);
//! let via_strassen = strassen.apply(&IntRing, &a, &b);
//! assert_eq!(via_strassen, Matrix::mul(&IntRing, &a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bilinear;
mod bitmatrix;
pub mod kernel;
mod matrix;
mod minplus;
mod modular;
mod poly;
mod semiring;
mod strassen;

pub use crate::bilinear::BilinearAlgorithm;
pub use crate::bitmatrix::BitMatrix;
pub use crate::kernel::Kernel;
pub use crate::matrix::Matrix;
pub use crate::minplus::{Dist, MinPlus, INFINITY};
pub use crate::modular::ModRing;
pub use crate::poly::{CappedPoly, PolyRing};
pub use crate::semiring::{BoolSemiring, IntRing, Ring, Semiring};
pub use crate::strassen::{strassen_mul, strassen_mul_with_base, StrassenBase, STRASSEN_CUTOFF};
