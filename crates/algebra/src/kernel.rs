//! Pluggable node-local matrix-multiply kernels.
//!
//! Every congested-clique algorithm in this workspace bottoms out in dense
//! node-local products — the step-4 term products of `fast_mm`, the block
//! products of `semiring_mm`, trace combines, bilinear evaluation. Those
//! products never touch the wire, so swapping how they are computed is
//! **observer-equivalent**: results, rounds, words, and pattern fingerprints
//! stay bit-identical across kernels, and only wall-clock (`*_ns`) moves.
//!
//! Three kernels are offered, selected by `CC_KERNEL` (parsed once per
//! process through `env_config`, warn-once on malformed values) or
//! programmatically with [`scoped`]:
//!
//! * `naive` — the schoolbook [`Matrix::mul`] reference; the explicit
//!   escape hatch reproducing the seed behaviour exactly;
//! * `blocked` — cache-blocked i-k-j tiles (tile edge from `CC_TILE`,
//!   default [`DEFAULT_TILE`]) for integer products, routing large square
//!   tiles through local Strassen above [`STRASSEN_ROUTE`];
//! * `bitset` — everything `blocked` does, plus bit-packed
//!   [`BitMatrix`](crate::BitMatrix) `AND`/`OR` products for the Boolean
//!   semiring (64 lanes per word, threshold-free).
//!
//! The **default is the auto-selecting `bitset` kernel** (spelled `auto` or
//! `bitset` in `CC_KERNEL`): blocked/Strassen tiles for integer products,
//! bit-packed words for Boolean ones — the fastest lane per ring now both
//! have soaked in CI. `CC_KERNEL=naive` pins the schoolbook reference.
//!
//! Integer reorderings are exact because `i64` addition is associative and
//! commutative, and local Strassen computes the same ring element; any
//! correct Boolean method returns the same booleans. Each dispatch emits a
//! `KernelDecision` telemetry event at `TraceLevel::Full`, mirroring the
//! executor's inline-vs-dispatched events.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::bitmatrix::BitMatrix;
use crate::matrix::Matrix;
use crate::semiring::{BoolSemiring, IntRing};
use crate::strassen::strassen_mul_with_base;

/// Default cache-block tile edge when `CC_TILE` is unset (entries per tile
/// side; 64×64 `i64` tiles are 32 KiB — comfortably L1/L2-resident).
pub const DEFAULT_TILE: usize = 64;

/// Square dimension at or above which the `blocked`/`bitset` kernels route
/// integer products through local Strassen ([`crate::strassen_mul`] with a
/// blocked base case).
pub const STRASSEN_ROUTE: usize = 256;

/// Which node-local multiply kernel to use. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Schoolbook [`Matrix::mul`] — the reference the other kernels must
    /// match bit for bit, kept as the explicit escape hatch
    /// (`CC_KERNEL=naive`).
    Naive,
    /// Cache-blocked i-k-j integer tiles with Strassen routing.
    Blocked,
    /// `Blocked` plus bit-packed Boolean products: the auto-selecting
    /// default — the fastest lane per ring (blocked/Strassen for integer
    /// products, bit-packed words for Boolean ones).
    #[default]
    Bitset,
}

impl Kernel {
    /// Parses a `CC_KERNEL` value. Matching is exact and lower-case;
    /// `auto` names the auto-selecting default ([`Kernel::Bitset`]).
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "naive" => Some(Self::Naive),
            "blocked" => Some(Self::Blocked),
            "bitset" | "auto" => Some(Self::Bitset),
            _ => None,
        }
    }

    /// The knob spelling of this kernel.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::Blocked => "blocked",
            Self::Bitset => "bitset",
        }
    }

    /// The kernel in effect: a [`scoped`] override if one is active, else
    /// the process-wide `CC_KERNEL` resolution (read once, warn-once on
    /// malformed values, default the auto-selecting [`Kernel::Bitset`]).
    #[must_use]
    pub fn current() -> Self {
        match OVERRIDE.load(Ordering::Acquire) {
            1 => Self::Naive,
            2 => Self::Blocked,
            3 => Self::Bitset,
            _ => *env_kernel(),
        }
    }
}

fn env_kernel() -> &'static Kernel {
    static ENV_KERNEL: OnceLock<Kernel> = OnceLock::new();
    ENV_KERNEL.get_or_init(|| {
        cc_telemetry::env_config::from_env_or(
            "cc-algebra",
            "CC_KERNEL",
            "one of naive|blocked|bitset|auto",
            Kernel::default(),
            Kernel::parse,
        )
    })
}

/// The tile edge for blocked kernels: `CC_TILE` (a positive integer, read
/// once, warn-once on malformed values) or [`DEFAULT_TILE`].
#[must_use]
pub fn tile() -> usize {
    static TILE: OnceLock<usize> = OnceLock::new();
    *TILE.get_or_init(|| {
        cc_telemetry::env_config::from_env_or(
            "cc-algebra",
            "CC_TILE",
            "a positive integer tile edge",
            DEFAULT_TILE,
            |raw| raw.parse().ok().filter(|&t: &usize| t > 0),
        )
    })
}

/// Process-wide scoped override: 0 = none, else `Kernel as u8 + 1`.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

/// Holds a [`scoped`] kernel override; restores the previous selection on
/// drop.
#[derive(Debug)]
pub struct ScopedKernel {
    prev: u8,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ScopedKernel {
    fn drop(&mut self) {
        OVERRIDE.store(self.prev, Ordering::Release);
    }
}

/// Forces `kernel` for the lifetime of the returned guard, overriding the
/// `CC_KERNEL` environment resolution. Guards serialise on a process-wide
/// mutex so overlapping scopes cannot interleave; code on *other* threads
/// observes the override too, which is harmless because every kernel is
/// observer-equivalent. Intended for tests and benches that sweep the
/// kernel axis inside one process.
#[must_use]
pub fn scoped(kernel: Kernel) -> ScopedKernel {
    let lock = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let prev = OVERRIDE.swap(kernel as u8 + 1, Ordering::AcqRel);
    ScopedKernel { prev, _lock: lock }
}

/// Reports one kernel dispatch decision at `TraceLevel::Full` — the kernel
/// actually chosen, the operation, the (output-row) size, and the tile
/// edge. Observer-only and a single branch when tracing is off.
#[inline]
fn emit_decision(kernel: &'static str, op: &'static str, n: usize, tile: usize) {
    cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
        cc_telemetry::Event::KernelDecision {
            kernel,
            op,
            n,
            tile,
        }
    });
}

/// Node-local `i64` product under the current kernel. Bit-identical to
/// [`Matrix::mul`] over [`IntRing`] for every kernel.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn mul_i64(a: &Matrix<i64>, b: &Matrix<i64>) -> Matrix<i64> {
    match Kernel::current() {
        Kernel::Naive => {
            emit_decision("naive", "mul_i64", a.rows(), 0);
            Matrix::mul(&IntRing, a, b)
        }
        Kernel::Blocked | Kernel::Bitset => {
            let t = tile();
            if a.rows() >= STRASSEN_ROUTE && a.rows() == a.cols() && b.rows() == b.cols() {
                emit_decision("strassen", "mul_i64", a.rows(), t);
                mul_i64_strassen(a, b, t)
            } else {
                emit_decision("blocked", "mul_i64", a.rows(), t);
                mul_i64_blocked(a, b, t)
            }
        }
    }
}

/// Node-local Boolean product under the current kernel. Bit-identical to
/// [`Matrix::mul`] over [`BoolSemiring`] for every kernel.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn mul_bool(a: &Matrix<bool>, b: &Matrix<bool>) -> Matrix<bool> {
    match Kernel::current() {
        Kernel::Naive => {
            emit_decision("naive", "mul_bool", a.rows(), 0);
            Matrix::mul(&BoolSemiring, a, b)
        }
        Kernel::Blocked => {
            let t = tile();
            emit_decision("blocked", "mul_bool", a.rows(), t);
            mul_bool_blocked(a, b, t)
        }
        Kernel::Bitset => {
            emit_decision("bitset", "mul_bool", a.rows(), 0);
            mul_bool_bitset(a, b)
        }
    }
}

/// Cache-blocked i-k-j `i64` product: the `i` and `k` loops are tiled so a
/// `tile`-row strip of `b` is reused across a whole `tile`-row strip of
/// `a`, and the inner `j` loop streams full output rows through a
/// slice-zip (bounds-check-free, autovectorisable) fused multiply-add.
/// Exact for any summation order because `i64` addition is associative and
/// commutative.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `tile == 0`.
#[must_use]
pub fn mul_i64_blocked(a: &Matrix<i64>, b: &Matrix<i64>, tile: usize) -> Matrix<i64> {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch in mul_i64_blocked");
    assert!(tile > 0, "tile edge must be positive");
    let (n, inner, m) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0i64; n * m];
    for i0 in (0..n).step_by(tile) {
        for k0 in (0..inner).step_by(tile) {
            let ke = (k0 + tile).min(inner);
            for i in i0..(i0 + tile).min(n) {
                let arow = a.row(i);
                let orow = &mut out[i * m..(i + 1) * m];
                for (k, &aik) in arow[k0..ke].iter().enumerate() {
                    if aik == 0 {
                        continue;
                    }
                    for (dst, &src) in orow.iter_mut().zip(b.row(k0 + k)) {
                        *dst += aik * src;
                    }
                }
            }
        }
    }
    Matrix::from_fn(n, m, |i, j| out[i * m + j])
}

/// Local Strassen with a blocked base case: recursion from
/// [`crate::strassen_mul`], leaves multiplied by [`mul_i64_blocked`].
///
/// # Panics
///
/// Panics if the matrices are not square with equal dimensions.
#[must_use]
pub fn mul_i64_strassen(a: &Matrix<i64>, b: &Matrix<i64>, tile: usize) -> Matrix<i64> {
    strassen_mul_with_base(a, b, &|x, y| mul_i64_blocked(x, y, tile))
}

/// Cache-blocked Boolean product (same i/k tiling and slice-zip inner loop
/// as the integer kernel, `∨`/`∧` arithmetic, unpacked entries).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `tile == 0`.
#[must_use]
pub fn mul_bool_blocked(a: &Matrix<bool>, b: &Matrix<bool>, tile: usize) -> Matrix<bool> {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch in mul_bool_blocked");
    assert!(tile > 0, "tile edge must be positive");
    let (n, inner, m) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![false; n * m];
    for i0 in (0..n).step_by(tile) {
        for k0 in (0..inner).step_by(tile) {
            let ke = (k0 + tile).min(inner);
            for i in i0..(i0 + tile).min(n) {
                let arow = a.row(i);
                let orow = &mut out[i * m..(i + 1) * m];
                for (k, &aik) in arow[k0..ke].iter().enumerate() {
                    if !aik {
                        continue;
                    }
                    for (dst, &src) in orow.iter_mut().zip(b.row(k0 + k)) {
                        *dst |= src;
                    }
                }
            }
        }
    }
    Matrix::from_fn(n, m, |i, j| out[i * m + j])
}

/// Bit-packed Boolean product: pack both operands into [`BitMatrix`] form,
/// multiply with word-wide `OR` lanes, unpack.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn mul_bool_bitset(a: &Matrix<bool>, b: &Matrix<bool>) -> Matrix<bool> {
    BitMatrix::from_matrix(a)
        .multiply(&BitMatrix::from_matrix(b))
        .to_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_int(rows: usize, cols: usize, seed: u64) -> Matrix<i64> {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 21) as i64 - 10
        })
    }

    fn rand_bool(rows: usize, cols: usize, seed: u64) -> Matrix<bool> {
        rand_int(rows, cols, seed).map(|&x| x > 0)
    }

    #[test]
    fn parse_grammar_is_exact() {
        assert_eq!(Kernel::parse("naive"), Some(Kernel::Naive));
        assert_eq!(Kernel::parse("blocked"), Some(Kernel::Blocked));
        assert_eq!(Kernel::parse("bitset"), Some(Kernel::Bitset));
        assert_eq!(Kernel::parse("auto"), Some(Kernel::Bitset));
        assert_eq!(Kernel::parse("Bitset"), None);
        assert_eq!(Kernel::parse("Auto"), None);
        assert_eq!(Kernel::parse(""), None);
        for k in [Kernel::Naive, Kernel::Blocked, Kernel::Bitset] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
    }

    #[test]
    fn default_is_the_auto_selecting_bitset_kernel() {
        assert_eq!(Kernel::default(), Kernel::Bitset);
        assert_eq!(Kernel::parse("auto"), Some(Kernel::default()));
    }

    #[test]
    fn scoped_override_nests_and_restores() {
        {
            let _g = scoped(Kernel::Blocked);
            assert_eq!(Kernel::current(), Kernel::Blocked);
        }
        let before = Kernel::current();
        {
            let _g = scoped(Kernel::Bitset);
            assert_eq!(Kernel::current(), Kernel::Bitset);
        }
        assert_eq!(Kernel::current(), before);
    }

    #[test]
    fn int_kernels_match_schoolbook_at_ragged_sizes() {
        for (rows, inner, cols) in [(1, 1, 1), (7, 63, 5), (64, 64, 64), (65, 130, 33)] {
            let a = rand_int(rows, inner, rows as u64);
            let b = rand_int(inner, cols, cols as u64);
            let naive = Matrix::mul(&IntRing, &a, &b);
            for t in [1, 5, 64, 1000] {
                assert_eq!(mul_i64_blocked(&a, &b, t), naive, "tile={t}");
            }
            if rows == inner && inner == cols {
                assert_eq!(mul_i64_strassen(&a, &b, 64), naive);
            }
        }
    }

    #[test]
    fn bool_kernels_match_schoolbook_at_ragged_sizes() {
        for (rows, inner, cols) in [(1, 1, 1), (7, 63, 5), (64, 64, 64), (65, 130, 33)] {
            let a = rand_bool(rows, inner, 3 + rows as u64);
            let b = rand_bool(inner, cols, 3 + cols as u64);
            let naive = Matrix::mul(&BoolSemiring, &a, &b);
            for t in [1, 7, 64, 1000] {
                assert_eq!(mul_bool_blocked(&a, &b, t), naive, "tile={t}");
            }
            assert_eq!(mul_bool_bitset(&a, &b), naive);
        }
    }

    #[test]
    fn dispatch_is_kernel_invariant() {
        let a = rand_int(40, 40, 11);
        let b = rand_int(40, 40, 12);
        let ba = rand_bool(40, 40, 13);
        let bb = rand_bool(40, 40, 14);
        let (iref, bref) = (
            Matrix::mul(&IntRing, &a, &b),
            Matrix::mul(&BoolSemiring, &ba, &bb),
        );
        for k in [Kernel::Naive, Kernel::Blocked, Kernel::Bitset] {
            let _g = scoped(k);
            assert_eq!(mul_i64(&a, &b), iref, "{}", k.name());
            assert_eq!(mul_bool(&ba, &bb), bref, "{}", k.name());
        }
    }
}
