//! The min-plus (tropical) semiring used for distance products.

use crate::semiring::Semiring;
use cc_clique::{WordReader, WordWriter};
use std::fmt;
use std::ops::Add;

/// The unreachable distance, `∞`.
pub const INFINITY: Dist = Dist(i64::MAX);

/// A path length in the min-plus semiring: a finite `i64` or [`INFINITY`].
///
/// `Dist` orders naturally (`∞` is larger than every finite value) and adds
/// with saturation at `∞`, so `min`/`+` give exactly the tropical semiring
/// operations.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{Dist, INFINITY};
/// let d = Dist::finite(3) + Dist::finite(4);
/// assert_eq!(d, Dist::finite(7));
/// assert_eq!(Dist::finite(3) + INFINITY, INFINITY);
/// assert!(Dist::finite(100) < INFINITY);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dist(i64);

impl Dist {
    /// A finite distance.
    ///
    /// # Panics
    ///
    /// Panics if `v` equals the `∞` sentinel (`i64::MAX`).
    #[must_use]
    pub fn finite(v: i64) -> Self {
        assert!(v != i64::MAX, "i64::MAX is reserved for INFINITY");
        Dist(v)
    }

    /// Zero distance (the multiplicative identity of the semiring).
    #[must_use]
    pub const fn zero() -> Self {
        Dist(0)
    }

    /// Returns `true` for finite distances.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.0 != i64::MAX
    }

    /// The finite value, or `None` for `∞`.
    #[must_use]
    pub fn value(&self) -> Option<i64> {
        self.is_finite().then_some(self.0)
    }

    /// The finite value.
    ///
    /// # Panics
    ///
    /// Panics on `∞`.
    #[must_use]
    pub fn unwrap(&self) -> i64 {
        self.value().expect("unwrap on INFINITY")
    }

    /// Raw `i64` representation (`i64::MAX` encodes `∞`).
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.0
    }

    /// Builds a distance from the raw representation.
    #[must_use]
    pub fn from_raw(v: i64) -> Self {
        Dist(v)
    }
}

impl Add for Dist {
    type Output = Dist;
    /// Min-plus "multiplication": length concatenation, saturating at `∞`.
    fn add(self, rhs: Dist) -> Dist {
        if self.is_finite() && rhs.is_finite() {
            Dist(self.0 + rhs.0)
        } else {
            INFINITY
        }
    }
}

impl fmt::Debug for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "∞")
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The min-plus (tropical) semiring `(ℤ ∪ {∞}, min, +)`.
///
/// Matrix multiplication over this structure is the *distance product*
/// `(S ⋆ T)ᵤᵥ = minᵥᵥ (Sᵤᵥᵥ + Tᵥᵥᵥ)` of the paper's Section 3.3.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{Dist, Matrix, MinPlus, INFINITY, Semiring};
/// let s = MinPlus;
/// assert_eq!(s.add(&Dist::finite(2), &Dist::finite(5)), Dist::finite(2)); // min
/// assert_eq!(s.mul(&Dist::finite(2), &Dist::finite(5)), Dist::finite(7)); // plus
/// assert_eq!(s.zero(), INFINITY);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = Dist;

    fn zero(&self) -> Dist {
        INFINITY
    }
    fn one(&self) -> Dist {
        Dist::zero()
    }
    fn add(&self, a: &Dist, b: &Dist) -> Dist {
        *a.min(b)
    }
    fn mul(&self, a: &Dist, b: &Dist) -> Dist {
        *a + *b
    }
    fn write_elem(&self, e: &Dist, out: &mut WordWriter) {
        out.push(e.0 as u64);
    }
    fn read_elem(&self, r: &mut WordReader<'_>) -> Dist {
        Dist(r.next() as i64)
    }
    fn elem_width(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use proptest::prelude::*;

    #[test]
    fn distance_product_is_shortest_two_hop() {
        // Weighted digraph on 3 nodes: 0 -> 1 (w=1), 1 -> 2 (w=2), 0 -> 2 (w=9).
        let inf = INFINITY;
        let f = Dist::finite;
        let w = Matrix::from_rows(&[
            [Dist::zero(), f(1), f(9)],
            [inf, Dist::zero(), f(2)],
            [inf, inf, Dist::zero()],
        ]);
        let w2 = Matrix::mul(&MinPlus, &w, &w);
        assert_eq!(w2[(0, 2)], f(3)); // 0 -> 1 -> 2 beats the direct edge
        assert_eq!(w2[(2, 0)], inf);
    }

    #[test]
    fn display_infinity() {
        assert_eq!(format!("{INFINITY}"), "∞");
        assert_eq!(format!("{}", Dist::finite(-4)), "-4");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn finite_rejects_sentinel() {
        let _ = Dist::finite(i64::MAX);
    }

    #[test]
    #[should_panic(expected = "unwrap on INFINITY")]
    fn unwrap_infinity_panics() {
        let _ = INFINITY.unwrap();
    }

    fn arb_dist() -> impl Strategy<Value = Dist> {
        prop_oneof![
            4 => (-1000i64..1000).prop_map(Dist::finite),
            1 => Just(INFINITY),
        ]
    }

    proptest! {
        #[test]
        fn semiring_axioms(a in arb_dist(), b in arb_dist(), c in arb_dist()) {
            let s = MinPlus;
            prop_assert_eq!(s.add(&a, &b), s.add(&b, &a));
            prop_assert_eq!(s.add(&s.add(&a, &b), &c), s.add(&a, &s.add(&b, &c)));
            prop_assert_eq!(s.mul(&s.mul(&a, &b), &c), s.mul(&a, &s.mul(&b, &c)));
            prop_assert_eq!(s.add(&a, &s.zero()), a);
            prop_assert_eq!(s.mul(&a, &s.one()), a);
            // Distributivity: a + min(b,c) == min(a+b, a+c).
            prop_assert_eq!(s.mul(&a, &s.add(&b, &c)), s.add(&s.mul(&a, &b), &s.mul(&a, &c)));
            // Annihilation: a + ∞ = ∞.
            prop_assert_eq!(s.mul(&a, &s.zero()), s.zero());
        }

        #[test]
        fn roundtrip(a in arb_dist()) {
            let s = MinPlus;
            let mut w = cc_clique::WordWriter::new();
            s.write_elem(&a, &mut w);
            let words = w.into_words();
            let mut r = cc_clique::WordReader::new(&words);
            prop_assert_eq!(s.read_elem(&mut r), a);
        }
    }
}
