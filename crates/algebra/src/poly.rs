//! The degree-capped polynomial ring `ℤ[x]/x^cap`.
//!
//! Lemma 18 of the paper embeds a distance product with entries in
//! `{0, …, M} ∪ {∞}` into a ring product by mapping a weight `w` to the
//! monomial `xʷ` (and `∞` to `0`); the distance-product entry is then the
//! minimum degree of the resulting polynomial. Degrees above `2M` never
//! matter, so arithmetic is performed in `ℤ[x]/x^cap` with `cap = 2M + 1`.
//!
//! Elements carry `cap` coefficient words on the wire, so transmitting a
//! polynomial entry honestly costs `cap` times more than a scalar — this is
//! precisely the `O(M)` factor in the paper's `O(M n^ρ)` bound.

use crate::semiring::{Ring, Semiring};
use cc_clique::{WordReader, WordWriter};
use std::fmt;

/// A polynomial in `ℤ[x]/x^cap`, stored as exactly `cap` coefficients
/// (constant term first).
///
/// All values participating in one computation must share the same `cap`;
/// mixing caps is a programming error and panics.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CappedPoly {
    coeffs: Vec<i64>,
}

impl CappedPoly {
    /// The zero polynomial with the given cap.
    #[must_use]
    pub fn zero(cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        Self {
            coeffs: vec![0; cap],
        }
    }

    /// The monomial `xᵈᵉᵍ`, or zero if `deg ≥ cap` (degrees at or above the
    /// cap are "too long to matter" in the distance-product embedding).
    #[must_use]
    pub fn monomial(cap: usize, deg: usize) -> Self {
        let mut p = Self::zero(cap);
        if deg < cap {
            p.coeffs[deg] = 1;
        }
        p
    }

    /// The degree cap (number of stored coefficients).
    #[must_use]
    pub fn cap(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of `x^i` (zero for `i ≥ cap`).
    #[must_use]
    pub fn coeff(&self, i: usize) -> i64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// The lowest degree with a non-zero coefficient, or `None` for the zero
    /// polynomial. In the Lemma 18 embedding this recovers the distance
    /// (`None` decodes to `∞`).
    #[must_use]
    pub fn min_degree(&self) -> Option<usize> {
        self.coeffs.iter().position(|&c| c != 0)
    }
}

impl fmt::Debug for CappedPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| format!("{c}x^{i}"))
            .collect();
        if terms.is_empty() {
            write!(f, "0 (cap {})", self.cap())
        } else {
            write!(f, "{} (cap {})", terms.join(" + "), self.cap())
        }
    }
}

/// The ring `ℤ[x]/x^cap` as a structure object.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{CappedPoly, PolyRing, Semiring};
///
/// let ring = PolyRing::new(5);
/// // x² · x³ ≡ 0 in ℤ[x]/x⁵ (degree hits the cap).
/// let p = ring.mul(&CappedPoly::monomial(5, 2), &CappedPoly::monomial(5, 3));
/// assert_eq!(p.min_degree(), None);
/// // x¹ · x² = x³ survives.
/// let q = ring.mul(&CappedPoly::monomial(5, 1), &CappedPoly::monomial(5, 2));
/// assert_eq!(q.min_degree(), Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyRing {
    cap: usize,
}

impl PolyRing {
    /// Creates the ring with the given degree cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        Self { cap }
    }

    /// The degree cap.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn check(&self, e: &CappedPoly) {
        assert_eq!(
            e.cap(),
            self.cap,
            "mixed caps: element {} vs ring {}",
            e.cap(),
            self.cap
        );
    }
}

impl Semiring for PolyRing {
    type Elem = CappedPoly;

    fn zero(&self) -> CappedPoly {
        CappedPoly::zero(self.cap)
    }

    fn one(&self) -> CappedPoly {
        CappedPoly::monomial(self.cap, 0)
    }

    fn add(&self, a: &CappedPoly, b: &CappedPoly) -> CappedPoly {
        self.check(a);
        self.check(b);
        let coeffs = a.coeffs.iter().zip(&b.coeffs).map(|(x, y)| x + y).collect();
        CappedPoly { coeffs }
    }

    fn mul(&self, a: &CappedPoly, b: &CappedPoly) -> CappedPoly {
        self.check(a);
        self.check(b);
        let mut out = vec![0i64; self.cap];
        for (i, &ca) in a.coeffs.iter().enumerate() {
            if ca == 0 {
                continue;
            }
            for (j, &cb) in b.coeffs.iter().enumerate() {
                if i + j >= self.cap {
                    break;
                }
                if cb != 0 {
                    out[i + j] += ca * cb;
                }
            }
        }
        CappedPoly { coeffs: out }
    }

    fn is_zero(&self, e: &CappedPoly) -> bool {
        e.coeffs.iter().all(|&c| c == 0)
    }

    fn write_elem(&self, e: &CappedPoly, out: &mut WordWriter) {
        self.check(e);
        for &c in &e.coeffs {
            out.push(c as u64);
        }
    }

    fn read_elem(&self, r: &mut WordReader<'_>) -> CappedPoly {
        let coeffs = (0..self.cap).map(|_| r.next() as i64).collect();
        CappedPoly { coeffs }
    }

    fn elem_width(&self) -> usize {
        self.cap
    }
}

impl Ring for PolyRing {
    fn neg(&self, a: &CappedPoly) -> CappedPoly {
        self.check(a);
        CappedPoly {
            coeffs: a.coeffs.iter().map(|&c| -c).collect(),
        }
    }

    fn scale(&self, coeff: i64, e: &CappedPoly) -> CappedPoly {
        self.check(e);
        CappedPoly {
            coeffs: e.coeffs.iter().map(|&c| coeff * c).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::minplus::{Dist, MinPlus, INFINITY};
    use proptest::prelude::*;

    #[test]
    fn monomial_degrees() {
        let p = CappedPoly::monomial(4, 2);
        assert_eq!(p.min_degree(), Some(2));
        assert_eq!(CappedPoly::monomial(4, 9).min_degree(), None);
        assert_eq!(CappedPoly::zero(4).min_degree(), None);
    }

    #[test]
    fn mul_truncates_at_cap() {
        let ring = PolyRing::new(3);
        let x2 = CappedPoly::monomial(3, 2);
        assert!(ring.is_zero(&ring.mul(&x2, &x2)));
    }

    #[test]
    #[should_panic(expected = "mixed caps")]
    fn mixed_caps_rejected() {
        let ring = PolyRing::new(3);
        let _ = ring.add(&CappedPoly::zero(3), &CappedPoly::zero(4));
    }

    /// The heart of Lemma 18: a matrix product over `ℤ[x]/x^cap` of monomial
    /// matrices computes the distance product via minimum degrees.
    #[test]
    fn lemma18_embedding_on_small_matrices() {
        let m = 3usize; // max weight
        let cap = 2 * m + 1;
        let ring = PolyRing::new(cap);
        let f = Dist::finite;
        let s = Matrix::from_rows(&[[f(1), f(3)], [INFINITY, f(0)]]);
        let t = Matrix::from_rows(&[[f(2), INFINITY], [f(1), f(3)]]);
        let embed = |w: &Dist| match w.value() {
            Some(v) => CappedPoly::monomial(cap, v as usize),
            None => CappedPoly::zero(cap),
        };
        let se = s.map(&embed);
        let te = t.map(&embed);
        let pe = Matrix::mul(&ring, &se, &te);
        let decoded = pe.map(|p| match p.min_degree() {
            Some(d) => f(d as i64),
            None => INFINITY,
        });
        let expected = Matrix::mul(&MinPlus, &s, &t);
        assert_eq!(decoded, expected);
    }

    fn arb_poly(cap: usize) -> impl Strategy<Value = CappedPoly> {
        proptest::collection::vec(-5i64..5, cap).prop_map(move |coeffs| CappedPoly { coeffs })
    }

    proptest! {
        #[test]
        fn ring_axioms(a in arb_poly(6), b in arb_poly(6), c in arb_poly(6)) {
            let r = PolyRing::new(6);
            prop_assert_eq!(r.add(&a, &b), r.add(&b, &a));
            prop_assert_eq!(r.mul(&r.mul(&a, &b), &c), r.mul(&a, &r.mul(&b, &c)));
            prop_assert_eq!(
                r.mul(&a, &r.add(&b, &c)),
                r.add(&r.mul(&a, &b), &r.mul(&a, &c))
            );
            prop_assert!(r.is_zero(&r.add(&a, &r.neg(&a))));
            prop_assert_eq!(r.mul(&a, &r.one()), a.clone());
        }

        #[test]
        fn roundtrip(a in arb_poly(5)) {
            let r = PolyRing::new(5);
            let mut w = cc_clique::WordWriter::new();
            r.write_elem(&a, &mut w);
            let words = w.into_words();
            prop_assert_eq!(words.len(), r.elem_width());
            let mut rd = cc_clique::WordReader::new(&words);
            prop_assert_eq!(r.read_elem(&mut rd), a);
        }
    }
}
