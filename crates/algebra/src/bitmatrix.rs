//! Bit-packed Boolean matrices: 64 adjacency entries per `u64` word.
//!
//! The paper's Boolean products (reachability, Seidel's base products, cycle
//! detection) only ever consume `∨`/`∧` of `{0, 1}` entries, so a row can be
//! packed into `⌈cols/64⌉` machine words and a whole 64-column strip of the
//! inner product collapses into one `AND`/`OR`/popcount. [`BitMatrix`] is the
//! node-local kernel behind `CC_KERNEL=bitset` (see [`crate::kernel`]); it is
//! observer-equivalent to the schoolbook Boolean product — same booleans out,
//! bit for bit — and only the wall-clock moves.

use crate::matrix::Matrix;

/// A dense Boolean matrix with rows packed 64 entries per `u64` word.
///
/// Column `j` of row `i` lives in bit `j % 64` of word `j / 64` of that row;
/// trailing bits of the last word are always zero, which keeps word-level
/// `OR`/popcount operations exact without masking.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{BitMatrix, BoolSemiring, Matrix};
/// let a = Matrix::from_fn(3, 3, |i, j| (i + j) % 2 == 0);
/// let b = Matrix::from_fn(3, 3, |i, j| i <= j);
/// let packed = BitMatrix::from_matrix(&a).multiply(&BitMatrix::from_matrix(&b));
/// assert_eq!(packed.to_matrix(), Matrix::mul(&BoolSemiring, &a, &b));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero matrix of the given shape.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Packs an unpacked Boolean [`Matrix`].
    #[must_use]
    pub fn from_matrix(m: &Matrix<bool>) -> Self {
        let mut out = Self::zero(m.rows(), m.cols());
        for i in 0..m.rows() {
            let row = m.row(i);
            for (j, &v) in row.iter().enumerate() {
                if v {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// Builds a matrix from a generator function.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut out = Self::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// Unpacks into a Boolean [`Matrix`].
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<bool> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.bits[i * self.words_per_row + j / 64] >> (j % 64) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let word = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *word |= 1 << (j % 64);
        } else {
            *word &= !(1 << (j % 64));
        }
    }

    /// The packed words of row `i`.
    #[must_use]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Total number of set entries (popcount over the packed words).
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Boolean matrix product `self · other` over `(∨, ∧)`.
    ///
    /// For every set bit `k` of row `i` of `self`, row `k` of `other` is
    /// `OR`-ed into output row `i` — 64 inner-product lanes per word
    /// operation, no thresholding, no integer lift.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    #[must_use]
    pub fn multiply(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in multiply");
        let mut out = BitMatrix::zero(self.rows, other.cols);
        let wpr = out.words_per_row;
        for i in 0..self.rows {
            let (lhs_row, out_row) = (self.row_words(i), i * wpr);
            for (wi, &word) in lhs_row.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let k = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    let rhs = other.row_words(k);
                    for (dst, &src) in out.bits[out_row..out_row + wpr].iter_mut().zip(rhs) {
                        *dst |= src;
                    }
                }
            }
        }
        out
    }

    /// Fused `self · other ∨ or_with`: the Boolean product with a third
    /// matrix `OR`-ed in word-wise, in one pass over the output.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not line up.
    #[must_use]
    pub fn multiply_or(&self, other: &BitMatrix, or_with: &BitMatrix) -> BitMatrix {
        let mut out = self.multiply(other);
        assert_eq!(
            (out.rows, out.cols),
            (or_with.rows, or_with.cols),
            "dimension mismatch in multiply_or"
        );
        for (dst, &src) in out.bits.iter_mut().zip(&or_with.bits) {
            *dst |= src;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::BoolSemiring;
    use proptest::prelude::*;

    fn rand_bool_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<bool> {
        let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
        Matrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) & 1 == 1
        })
    }

    #[test]
    fn pack_roundtrip_at_ragged_sizes() {
        for n in [1usize, 63, 64, 65, 130] {
            let m = rand_bool_matrix(n, n, n as u64);
            let packed = BitMatrix::from_matrix(&m);
            assert_eq!(packed.to_matrix(), m, "n={n}");
            let ones: usize = (0..n)
                .map(|i| m.row(i).iter().filter(|&&v| v).count())
                .sum();
            assert_eq!(packed.count_ones(), ones as u64);
        }
    }

    #[test]
    fn product_matches_naive_at_ragged_sizes() {
        for n in [1usize, 63, 64, 65, 130] {
            let a = rand_bool_matrix(n, n, 2 * n as u64);
            let b = rand_bool_matrix(n, n, 2 * n as u64 + 1);
            let naive = Matrix::mul(&BoolSemiring, &a, &b);
            let packed = BitMatrix::from_matrix(&a).multiply(&BitMatrix::from_matrix(&b));
            assert_eq!(packed.to_matrix(), naive, "n={n}");
        }
    }

    #[test]
    fn rectangular_product_and_fused_or() {
        let a = rand_bool_matrix(5, 70, 1);
        let b = rand_bool_matrix(70, 130, 2);
        let c = rand_bool_matrix(5, 130, 3);
        let naive = Matrix::mul(&BoolSemiring, &a, &b);
        let fused = BitMatrix::from_matrix(&a)
            .multiply_or(&BitMatrix::from_matrix(&b), &BitMatrix::from_matrix(&c));
        let expected = naive.map_indexed(|i, j, &v| v || c[(i, j)]);
        assert_eq!(fused.to_matrix(), expected);
    }

    proptest! {
        #[test]
        fn random_products_match_naive(
            rows in 1usize..20,
            inner in 1usize..90,
            cols in 1usize..90,
            seed in 0u64..1000,
        ) {
            let a = rand_bool_matrix(rows, inner, seed);
            let b = rand_bool_matrix(inner, cols, seed + 7);
            let naive = Matrix::mul(&BoolSemiring, &a, &b);
            let packed = BitMatrix::from_matrix(&a).multiply(&BitMatrix::from_matrix(&b));
            prop_assert_eq!(packed.to_matrix(), naive);
        }

        #[test]
        fn get_set_roundtrip(i in 0usize..70, j in 0usize..70, v: bool) {
            let mut m = BitMatrix::zero(70, 70);
            m.set(i, j, v);
            prop_assert_eq!(m.get(i, j), v);
            m.set(i, j, false);
            prop_assert_eq!(m.count_ones(), 0);
        }
    }
}
