//! Dense, structure-agnostic matrices.

use crate::semiring::Semiring;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix in row-major order.
///
/// `Matrix` is a plain container; algebraic operations take the structure
/// (a [`Semiring`] or [`crate::Ring`]) as an explicit argument, so the same
/// matrix type serves Boolean, tropical, integer, and polynomial entries.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{IntRing, Matrix};
/// let a = Matrix::from_rows(&[[1i64, 0], [2, 3]]);
/// let b = Matrix::identity(&IntRing, 2);
/// assert_eq!(Matrix::mul(&IntRing, &a, &b), a);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `fill`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Creates a matrix by tabulating `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[impl AsRef<[T]>]) -> Self {
        let cols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.as_ref().len(), cols, "ragged rows");
            data.extend_from_slice(r.as_ref());
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element-wise map into a new matrix.
    #[must_use]
    pub fn map<U: Clone>(&self, f: impl FnMut(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Element-wise map with index access.
    #[must_use]
    pub fn map_indexed<U: Clone>(&self, mut f: impl FnMut(usize, usize, &T) -> U) -> Matrix<U> {
        Matrix::from_fn(self.rows, self.cols, |i, j| f(i, j, &self[(i, j)]))
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].clone())
    }

    /// Copies the rectangular block with top-left corner `(r0, c0)` and the
    /// given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    #[must_use]
    pub fn block(&self, r0: usize, c0: usize, height: usize, width: usize) -> Self {
        assert!(
            r0 + height <= self.rows && c0 + width <= self.cols,
            "block out of bounds"
        );
        Matrix::from_fn(height, width, |i, j| self[(r0 + i, c0 + j)].clone())
    }

    /// Writes `block` into this matrix with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix<T>) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)].clone();
            }
        }
    }

    /// Pads (or truncates) to `rows × cols`, filling new entries with `fill`.
    #[must_use]
    pub fn resized(&self, rows: usize, cols: usize, fill: T) -> Self {
        Matrix::from_fn(rows, cols, |i, j| {
            if i < self.rows && j < self.cols {
                self[(i, j)].clone()
            } else {
                fill.clone()
            }
        })
    }

    /// Iterates over `(row, col, &value)` in row-major order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(move |(k, v)| (k / self.cols, k % self.cols, v))
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<T: Clone> Matrix<T> {
    /// Zero matrix of a semiring.
    #[must_use]
    pub fn zero<S: Semiring<Elem = T>>(s: &S, rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, s.zero())
    }

    /// Identity matrix of a semiring.
    #[must_use]
    pub fn identity<S: Semiring<Elem = T>>(s: &S, n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { s.one() } else { s.zero() })
    }

    /// Entry-wise sum over a semiring.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn add<S: Semiring<Elem = T>>(s: &S, a: &Self, b: &Self) -> Self {
        assert_eq!(
            (a.rows, a.cols),
            (b.rows, b.cols),
            "dimension mismatch in add"
        );
        Matrix::from_fn(a.rows, a.cols, |i, j| s.add(&a[(i, j)], &b[(i, j)]))
    }

    /// Schoolbook matrix product over a semiring.
    ///
    /// This is the reference `O(r·c·k)` product used by local computations
    /// and as the trusted oracle in tests of the fast algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    #[must_use]
    pub fn mul<S: Semiring<Elem = T>>(s: &S, a: &Self, b: &Self) -> Self {
        assert_eq!(a.cols, b.rows, "dimension mismatch in mul");
        let mut out = Matrix::filled(a.rows, b.cols, s.zero());
        for i in 0..a.rows {
            for k in 0..a.cols {
                let aik = &a[(i, k)];
                if s.is_zero(aik) {
                    continue;
                }
                for j in 0..b.cols {
                    let prod = s.mul(aik, &b[(k, j)]);
                    let cur = &out[(i, j)];
                    out[(i, j)] = s.add(cur, &prod);
                }
            }
        }
        out
    }

    /// `k`-th power of a square matrix over a semiring (by repeated
    /// squaring). `k = 0` yields the identity.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn pow<S: Semiring<Elem = T>>(s: &S, a: &Self, mut k: u32) -> Self {
        assert_eq!(a.rows, a.cols, "pow requires a square matrix");
        let mut base = a.clone();
        let mut acc = Matrix::identity(s, a.rows);
        while k > 0 {
            if k & 1 == 1 {
                acc = s.mul_dense(&acc, &base);
            }
            k >>= 1;
            if k > 0 {
                base = s.mul_dense(&base, &base);
            }
        }
        acc
    }

    /// Trace (sum of diagonal entries) over a semiring.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn trace<S: Semiring<Elem = T>>(&self, s: &S) -> T {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        let diag: Vec<T> = (0..self.rows).map(|i| self[(i, i)].clone()).collect();
        s.sum(diag.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSemiring, IntRing};
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as i64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 12);
        assert_eq!(m.row(1), &[10, 11, 12]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as i64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as i64);
        let b = m.block(1, 2, 2, 2);
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::filled(4, 4, 0i64);
        z.set_block(1, 2, &b);
        assert_eq!(z[(2, 3)], m[(2, 3)]);
        assert_eq!(z[(0, 0)], 0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as i64);
        let id = Matrix::identity(&IntRing, 3);
        assert_eq!(Matrix::mul(&IntRing, &a, &id), a);
        assert_eq!(Matrix::mul(&IntRing, &id, &a), a);
    }

    #[test]
    fn boolean_mul_is_reachability_step() {
        // Path 0 -> 1 -> 2: A² has the 2-step edge (0,2).
        let a = Matrix::from_rows(&[
            [false, true, false],
            [false, false, true],
            [false, false, false],
        ]);
        let a2 = Matrix::mul(&BoolSemiring, &a, &a);
        assert!(a2[(0, 2)]);
        assert!(!a2[(0, 1)]);
    }

    #[test]
    fn pow_matches_iterated_mul() {
        let a = Matrix::from_rows(&[[1i64, 1], [1, 0]]); // Fibonacci matrix
        let a5 = Matrix::pow(&IntRing, &a, 5);
        assert_eq!(a5[(0, 0)], 8); // F(6)
        assert_eq!(Matrix::pow(&IntRing, &a, 0), Matrix::identity(&IntRing, 2));
    }

    #[test]
    fn trace_sums_diagonal() {
        let a = Matrix::from_rows(&[[1i64, 9], [9, 2]]);
        assert_eq!(a.trace(&IntRing), 3);
    }

    #[test]
    fn resized_pads_with_fill() {
        let a = Matrix::from_rows(&[[1i64, 2], [3, 4]]);
        let b = a.resized(3, 3, -1);
        assert_eq!(b[(1, 1)], 4);
        assert_eq!(b[(2, 2)], -1);
        assert_eq!(b.resized(2, 2, 0), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_rejects_mismatched() {
        let a = Matrix::filled(2, 3, 0i64);
        let b = Matrix::filled(2, 3, 0i64);
        let _ = Matrix::mul(&IntRing, &a, &b);
    }

    proptest! {
        #[test]
        fn mul_associativity(seed in 0u64..1000) {
            let mut s = seed;
            let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); ((s >> 33) % 7) as i64 - 3 };
            let a = Matrix::from_fn(4, 4, |_, _| next());
            let b = Matrix::from_fn(4, 4, |_, _| next());
            let c = Matrix::from_fn(4, 4, |_, _| next());
            let l = Matrix::mul(&IntRing, &Matrix::mul(&IntRing, &a, &b), &c);
            let r = Matrix::mul(&IntRing, &a, &Matrix::mul(&IntRing, &b, &c));
            prop_assert_eq!(l, r);
        }
    }
}
