//! Local (single-machine) Strassen multiplication for integer matrices.
//!
//! Used as a fast local-compute kernel and as a Criterion baseline against
//! the schoolbook product; the *distributed* Strassen-style algorithm lives
//! in `cc-core` and is parameterised by [`crate::BilinearAlgorithm`] instead.

use crate::matrix::Matrix;
use crate::semiring::IntRing;

/// Dimension at or below which [`strassen_mul`] falls back to the schoolbook
/// product.
pub const STRASSEN_CUTOFF: usize = 64;

/// A base-case `i64` product for [`strassen_mul_with_base`]. Any exact
/// product is admissible; the result is bit-identical regardless of base.
pub type StrassenBase<'a> = dyn Fn(&Matrix<i64>, &Matrix<i64>) -> Matrix<i64> + 'a;

/// Multiplies two square integer matrices with recursive Strassen
/// multiplication (`O(n^{2.807})` element multiplications).
///
/// Odd dimensions are zero-padded one level at a time, so any size is
/// accepted.
///
/// # Panics
///
/// Panics if the matrices are not square with equal dimensions.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{strassen_mul, IntRing, Matrix};
/// let a = Matrix::from_fn(10, 10, |i, j| (i * 3 + j) as i64 % 7 - 3);
/// let b = Matrix::from_fn(10, 10, |i, j| (i + 5 * j) as i64 % 5 - 2);
/// assert_eq!(strassen_mul(&a, &b), Matrix::mul(&IntRing, &a, &b));
/// ```
#[must_use]
pub fn strassen_mul(a: &Matrix<i64>, b: &Matrix<i64>) -> Matrix<i64> {
    strassen_mul_with_base(a, b, &|x, y| Matrix::mul(&IntRing, x, y))
}

/// [`strassen_mul`] with a caller-supplied base-case product, used below
/// [`STRASSEN_CUTOFF`]. The local-kernel layer (`crate::kernel`) routes
/// leaves through its cache-blocked product; any base computing the exact
/// `i64` product yields a bit-identical result, since Strassen's linear
/// combinations are exact over the integers.
///
/// # Panics
///
/// Panics if the matrices are not square with equal dimensions.
#[must_use]
pub fn strassen_mul_with_base(
    a: &Matrix<i64>,
    b: &Matrix<i64>,
    base: &StrassenBase<'_>,
) -> Matrix<i64> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "strassen_mul requires square matrices");
    assert_eq!(
        (b.rows(), b.cols()),
        (n, n),
        "strassen_mul requires equal-sized matrices"
    );
    if n <= STRASSEN_CUTOFF {
        return base(a, b);
    }
    if n % 2 == 1 {
        let ap = a.resized(n + 1, n + 1, 0);
        let bp = b.resized(n + 1, n + 1, 0);
        return strassen_mul_with_base(&ap, &bp, base).resized(n, n, 0);
    }
    let h = n / 2;
    let blk = |m: &Matrix<i64>, i: usize, j: usize| m.block(i * h, j * h, h, h);
    let (a11, a12, a21, a22) = (blk(a, 0, 0), blk(a, 0, 1), blk(a, 1, 0), blk(a, 1, 1));
    let (b11, b12, b21, b22) = (blk(b, 0, 0), blk(b, 0, 1), blk(b, 1, 0), blk(b, 1, 1));

    let add = |x: &Matrix<i64>, y: &Matrix<i64>| Matrix::add(&IntRing, x, y);
    let sub = |x: &Matrix<i64>, y: &Matrix<i64>| {
        Matrix::from_fn(x.rows(), x.cols(), |i, j| x[(i, j)] - y[(i, j)])
    };

    let rec = |x: &Matrix<i64>, y: &Matrix<i64>| strassen_mul_with_base(x, y, base);
    let m1 = rec(&add(&a11, &a22), &add(&b11, &b22));
    let m2 = rec(&add(&a21, &a22), &b11);
    let m3 = rec(&a11, &sub(&b12, &b22));
    let m4 = rec(&a22, &sub(&b21, &b11));
    let m5 = rec(&add(&a11, &a12), &b22);
    let m6 = rec(&sub(&a21, &a11), &add(&b11, &b12));
    let m7 = rec(&sub(&a12, &a22), &add(&b21, &b22));

    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2, &m4);
    let c22 = add(&add(&sub(&m1, &m2), &m3), &m6);

    let mut out = Matrix::filled(n, n, 0i64);
    out.set_block(0, 0, &c11);
    out.set_block(0, h, &c12);
    out.set_block(h, 0, &c21);
    out.set_block(h, h, &c22);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
        let mut s = seed;
        Matrix::from_fn(n, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % 21) as i64 - 10
        })
    }

    #[test]
    fn matches_schoolbook_across_sizes() {
        for n in [1, 2, 5, 16, 63, 65, 70, 100, 130] {
            let a = rand_matrix(n, n as u64);
            let b = rand_matrix(n, n as u64 + 1);
            assert_eq!(strassen_mul(&a, &b), Matrix::mul(&IntRing, &a, &b), "n={n}");
        }
    }

    #[test]
    fn identity_preserved() {
        let n = 96;
        let a = rand_matrix(n, 7);
        let id = Matrix::identity(&IntRing, n);
        assert_eq!(strassen_mul(&a, &id), a);
    }
}
