//! The [`Clique`] engine: primitives, routing, and accounting.

use crate::inbox::Inboxes;
use crate::network::Network;
use crate::stats::Stats;
use crate::word::Word;
use cc_netsim::{NetsimConfig, NetsimTransport};
use cc_runtime::{Engine, Executor, ExecutorKind, LinkLoads, NodeProgram, WireProgram};
use cc_transport::{TransportFabric, TransportKind};
use std::sync::Arc;

/// Communication regime of the simulated clique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The standard congested clique: each node may send a *different* word
    /// to each neighbour in a round.
    #[default]
    Unicast,
    /// The *broadcast* congested clique: every message a node sends in a
    /// round must be identical across all neighbours. Point-to-point
    /// primitives ([`Clique::exchange`], [`Clique::route`]) are unavailable.
    /// Used to reproduce the Ω̃(n) separation of Corollary 24.
    Broadcast,
}

/// Relay-selection policy of the balanced router (see [`Clique::route`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelayPolicy {
    /// Power-of-two-choices: hash two candidate relays per word, pick the
    /// less loaded. Keeps per-link loads within a small constant of the
    /// ideal `⌈L/n⌉` (the default).
    #[default]
    TwoChoice,
    /// Single hashed relay per word (plain Valiant routing). Simpler, but
    /// suffers `O(log n / log log n)` balls-into-bins slack; kept for the
    /// router ablation experiment.
    SingleHash,
}

/// Configuration for a [`Clique`].
#[derive(Debug, Clone)]
pub struct CliqueConfig {
    /// Communication regime (see [`Mode`]).
    pub mode: Mode,
    /// Seed for the deterministic relay-balancing hash used by
    /// [`Clique::route`] and [`Clique::gossip`].
    pub route_seed: u64,
    /// When `true`, every communication step records a fingerprint of its
    /// per-link loads into [`Stats::pattern_fingerprints`]; used by the
    /// obliviousness tests.
    pub record_patterns: bool,
    /// Relay selection policy for balanced routing.
    pub relay_policy: RelayPolicy,
    /// Execution backend for node-local computation and message delivery
    /// (see [`ExecutorKind`]). [`ExecutorKind::Parallel`] runs the
    /// simulation on a persistent worker pool (built once per clique,
    /// parked between steps, joined on drop) with results, round counts,
    /// and pattern fingerprints bit-identical to
    /// [`ExecutorKind::Sequential`]. The default consults the
    /// `CC_EXECUTOR` environment variable, so CI can force every
    /// simulation in the process onto a parallel backend.
    pub executor: ExecutorKind,
    /// Overrides the executor's small-`n` sequential cutover (piece counts
    /// below the threshold run inline; see
    /// [`cc_runtime::Executor::with_cutover`]). `None` uses the runtime
    /// default (`DEFAULT_SEQ_CUTOVER`, or the `CC_EXEC_CUTOVER`
    /// environment variable).
    pub exec_cutover: Option<usize>,
    /// Message fabric carrying every communication step (see
    /// [`TransportKind`]): the in-memory sharded flush (the default),
    /// cross-thread channels with one inbox queue per node, or true
    /// multi-process unix-socket workers. Deliveries, rounds, words, and
    /// pattern fingerprints are bit-identical across backends. The default
    /// consults the `CC_TRANSPORT` environment variable — mirroring
    /// `CC_EXECUTOR` — so CI can force every simulation in the process onto
    /// a given fabric; an unrecognised value is reported once and falls
    /// back to in-memory.
    pub transport: TransportKind,
    /// Simulated network conditions layered over the transport (see
    /// [`NetsimConfig`]): seeded per-link latency/jitter, stragglers,
    /// message loss with retransmission, and node crash/restart fault
    /// plans. Results, rounds, words, and pattern fingerprints are
    /// bit-identical to an unconditioned fabric — conditioning only adds
    /// the simulated-time/retransmit/fault accounting surfaced through
    /// [`Stats::sim_time_ns`] and friends. The default consults the
    /// `CC_NETSIM` environment variable (`off` / `lan` / `wan` / `lossy` /
    /// `flaky-node`, optionally `:<seed>`), mirroring `CC_TRANSPORT`.
    pub netsim: NetsimConfig,
}

impl Default for CliqueConfig {
    fn default() -> Self {
        Self {
            mode: Mode::Unicast,
            route_seed: 0x5eed_c11e,
            record_patterns: false,
            relay_policy: RelayPolicy::TwoChoice,
            executor: ExecutorKind::from_env_or(ExecutorKind::Sequential),
            exec_cutover: None,
            transport: TransportKind::from_env_or(TransportKind::InMemory),
            netsim: NetsimConfig::from_env_or(NetsimConfig::default()),
        }
    }
}

impl CliqueConfig {
    /// The default configuration with a pooled parallel executor sized to
    /// the machine.
    #[must_use]
    pub fn parallel() -> Self {
        Self {
            executor: ExecutorKind::parallel(),
            ..Self::default()
        }
    }

    /// Builds the executor this configuration describes. Public so hosts
    /// that create many cliques (e.g. a `cc-service` warm pool) can build
    /// the executor **once** and share the handle across instances via
    /// [`Clique::with_config_and_executor`].
    #[must_use]
    pub fn build_executor(&self) -> Executor {
        match self.exec_cutover {
            Some(cutover) => Executor::with_cutover(self.executor, cutover),
            None => Executor::new(self.executor),
        }
    }
}

/// A simulated congested clique of `n` nodes.
///
/// All communication primitives take a *message generator* closure that is
/// invoked once per node id; by convention the closure may consult only that
/// node's local state and previously received messages, mirroring the
/// locality discipline of the real model.
///
/// # Examples
///
/// ```rust
/// use cc_clique::Clique;
///
/// let mut clique = Clique::new(4);
/// // Each node v sends v*10 + u to node u, over direct links.
/// let inboxes = clique.exchange(|v| {
///     (0..4).filter(|&u| u != v).map(|u| (u, vec![(v * 10 + u) as u64])).collect()
/// });
/// assert_eq!(inboxes.received(2, 3), &[32]);
/// assert_eq!(clique.rounds(), 1);
/// ```
#[derive(Debug)]
pub struct Clique {
    n: usize,
    net: Network,
    stats: Stats,
    cfg: CliqueConfig,
    exec: Executor,
    /// Simulated network time already drained from the transport into
    /// `stats` — the transport's counter is cumulative for its lifetime,
    /// while `stats` is per-run (it survives `reset`).
    sim_seen: u64,
}

impl Clique {
    /// Creates a clique of `n` nodes with the default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_config(n, CliqueConfig::default())
    }

    /// Creates a clique with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_config(n: usize, cfg: CliqueConfig) -> Self {
        let exec = cfg.build_executor();
        Self::with_config_and_executor(n, cfg, exec)
    }

    /// Creates a clique with an explicit configuration **and** a pre-built
    /// executor handle, instead of building one from the config. Executor
    /// handles are cheap clones sharing one persistent worker pool, so this
    /// is the seam that lets many cliques — e.g. every instance of a
    /// `cc-service` warm pool — share a single pool of OS threads rather
    /// than spawning one per instance. Results are identical either way;
    /// only thread ownership changes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_config_and_executor(n: usize, cfg: CliqueConfig, exec: Executor) -> Self {
        assert!(
            n >= 2,
            "a congested clique needs at least 2 nodes (got {n})"
        );
        // The condition layer wraps the *outside* of the built transport
        // (including any tracing decorator), so every round barrier —
        // closure primitives and engine-driven runs alike — is conditioned.
        // `wrap` is the identity for `NetsimProfile::Off`.
        let transport = NetsimTransport::wrap(cfg.transport.build(n, exec.clone()), cfg.netsim);
        Self {
            n,
            net: Network::new(n, transport),
            stats: Stats::new(cfg.record_patterns),
            exec,
            cfg,
            sim_seen: 0,
        }
    }

    /// Resets the accounting — rounds, words, phases, pattern fingerprints
    /// — to a fresh-clique state while keeping the warm infrastructure: the
    /// executor (and its worker pool), the transport (and its node threads
    /// or worker processes), and the configuration all survive. This is the
    /// instance-reuse seam warm pools are built on: because every
    /// primitive's relay draws depend only on the configuration and the
    /// messages of the current call — never on history — a reset clique
    /// produces answers, rounds, words, and fingerprints bit-identical to
    /// a newly built one. (Transport barrier epochs keep counting across
    /// resets; they are a lifetime diagnostic, not per-run accounting.)
    pub fn reset(&mut self) {
        // Mark the reuse boundary in the trace: the discarded totals and
        // the fabric epoch the next run starts from, so a timeline over a
        // warm-pool session shows where one logical run ends.
        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Summary, || {
            cc_telemetry::Event::Reset {
                rounds: self.stats.rounds(),
                words: self.stats.words(),
                epoch: self.net.epochs(),
            }
        });
        self.stats = Stats::new(self.cfg.record_patterns);
        // Simulated network time, like transport epochs, keeps counting on
        // the fabric across resets; re-anchor so the fresh stats only see
        // time accrued from here on.
        self.sim_seen = self.net.sim_time_ns();
    }

    /// Creates a clique of `n` nodes executing on a parallel backend sized
    /// to the machine. Results are bit-identical to [`Clique::new`]; only
    /// wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn parallel(n: usize) -> Self {
        Self::with_config(n, CliqueConfig::parallel())
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Synchronous rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.stats.rounds()
    }

    /// Execution statistics (rounds, words, per-phase breakdown).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Configuration this clique was created with.
    #[must_use]
    pub fn config(&self) -> &CliqueConfig {
        &self.cfg
    }

    /// Round barriers the transport has executed (one per communication
    /// phase: an exchange flush, a routing phase, a broadcast, an engine
    /// round). Identical across backends for identical call sequences —
    /// the determinism tests pin it alongside rounds and fingerprints.
    #[must_use]
    pub fn transport_epochs(&self) -> u64 {
        self.net.epochs()
    }

    /// Name of the transport backend carrying this clique's traffic
    /// (`"inmemory"`, `"channel"`, `"socket"`, or `"tcp"`).
    #[must_use]
    pub fn transport_name(&self) -> &'static str {
        self.net.transport_name()
    }

    /// Encoded payload bytes the orchestrating process itself has shipped
    /// onto the fabric so far. Star-shaped backends relay every round
    /// through the orchestrator, so this grows with the traffic; in a
    /// program-resident session (see [`Clique::run_wire_programs`] on a
    /// `tcp-peer` fabric) round payloads travel worker-to-worker and this
    /// stays untouched. In-memory delivery reports `0`.
    #[must_use]
    pub fn orchestrator_bytes(&self) -> u64 {
        self.net.orchestrator_bytes()
    }

    /// Simulated network time accrued by this run, in nanoseconds: the
    /// maximum over delivering links of base latency + per-word serialised
    /// time + jitter (+ retransmission backoff, straggler inflation, and
    /// crash outages), summed over round barriers. `0` unless a `cc-netsim`
    /// profile is active (see [`CliqueConfig::netsim`]); for a fixed
    /// profile, seed, and workload the value is bit-reproducible. Reset by
    /// [`Clique::reset`] along with rounds and words.
    #[must_use]
    pub fn sim_time_ns(&self) -> u64 {
        self.stats.sim_time_ns()
    }

    /// Simulated message retransmissions performed by the condition layer
    /// over the transport's lifetime (like [`Clique::transport_epochs`],
    /// this is a lifetime diagnostic that keeps counting across resets).
    /// `0` unless a lossy `cc-netsim` profile is active.
    #[must_use]
    pub fn net_retransmits(&self) -> u64 {
        self.net.net_retransmits()
    }

    /// Simulated node crashes injected by the condition layer over the
    /// transport's lifetime. `0` unless a fault-plan profile
    /// (`flaky-node`) is active.
    #[must_use]
    pub fn net_faults(&self) -> u64 {
        self.net.net_faults()
    }

    /// The execution backend handle. Algorithms use this to fan node-local
    /// computation out over the configured backend
    /// (`clique.executor().map(n, |v| …)`), keeping the parallelism decision
    /// in one place — the [`CliqueConfig`]. The handle is a cheap clone:
    /// pooled executors share one persistent worker pool across all
    /// clones, which lives until the clique (and every handle) drops.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.exec.clone()
    }

    /// Runs `f` inside a named accounting phase; rounds, words, and
    /// wall-clock accrued while `f` runs are attributed to `name` (and to
    /// enclosing phases). At `CC_TRACE=summary` and above the phase also
    /// emits start/end events into the telemetry capture.
    pub fn phase<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let tel = cc_telemetry::global();
        tel.emit(cc_telemetry::TraceLevel::Summary, || {
            cc_telemetry::Event::PhaseStart {
                name: name.to_string(),
            }
        });
        let before = (self.stats.rounds(), self.stats.words());
        self.stats.push_phase(name);
        let r = f(self);
        let (popped, wall_ns) = self.stats.pop_phase();
        tel.emit(cc_telemetry::TraceLevel::Summary, || {
            cc_telemetry::Event::PhaseEnd {
                name: popped,
                rounds: self.stats.rounds() - before.0,
                words: self.stats.words() - before.1,
                wall_ns,
            }
        });
        r
    }

    fn charge_loads(&mut self, loads: &LinkLoads) {
        self.stats.record_fingerprint(loads.iter());
        self.stats.charge(loads.rounds(), loads.words());
        self.sync_sim_time();
    }

    /// Drains simulated network time newly accrued on the transport into
    /// the per-run stats (attributed to every active phase). A no-op on an
    /// unconditioned fabric, where the transport's counter stays at zero.
    fn sync_sim_time(&mut self) {
        let total = self.net.sim_time_ns();
        let delta = total - self.sim_seen;
        self.sim_seen = total;
        self.stats.charge_sim_time(delta);
    }

    fn require_unicast(&self, primitive: &str) {
        assert!(
            self.cfg.mode == Mode::Unicast,
            "{primitive} is unavailable in the broadcast congested clique (Mode::Broadcast)"
        );
    }

    /// Direct link-level exchange: node `v`'s generator returns a list of
    /// `(destination, words)` messages, each of which travels on the
    /// `(v, destination)` link. The step costs as many rounds as the longest
    /// per-link queue.
    ///
    /// Use this for patterns that are already balanced per link; use
    /// [`Clique::route`] when per-link loads would exceed per-node loads
    /// divided by `n`.
    pub fn exchange<F>(&mut self, mut messages: F) -> Inboxes
    where
        F: FnMut(usize) -> Vec<(usize, Vec<Word>)>,
    {
        self.require_unicast("exchange");
        for v in 0..self.n {
            for (dst, words) in messages(v) {
                self.net.enqueue(v, dst, &words);
            }
        }
        let (inboxes, loads) = self.net.flush();
        self.charge_loads(&loads);
        inboxes
    }

    /// [`Clique::exchange`] with the per-node generator evaluated on the
    /// configured executor. Requires a `Fn + Sync` generator (each node's
    /// messages may be computed on any worker thread); semantics, costs,
    /// and results are identical to the sequential primitive.
    pub fn exchange_par<F>(&mut self, messages: F) -> Inboxes
    where
        F: Fn(usize) -> Vec<(usize, Vec<Word>)> + Sync,
    {
        // Fail fast before any generator fan-out, like `exchange` does.
        self.require_unicast("exchange");
        // Fan the generator out, then replay the results through the
        // sequential primitive (map returns them in node order), so the
        // enqueue/validation logic exists once.
        let mut per_node = self.exec.map(self.n, &messages).into_iter();
        self.exchange(|_| per_node.next().expect("one result per node"))
    }

    /// Balanced two-phase routing (Lenzen-style): every word is sent to a
    /// pseudo-random relay and then forwarded to its destination, so a step
    /// in which each node sends and receives at most `L` words costs
    /// `O(⌈L/n⌉)` rounds — `O(1)` rounds for `L ≤ n`, as guaranteed by the
    /// routing theorem the paper invokes.
    ///
    /// This entry point models *oblivious* routing (the pattern is known to
    /// all nodes in advance, so no destination headers are transmitted). For
    /// data-dependent patterns use [`Clique::route_dynamic`], which charges
    /// one extra header word per message.
    pub fn route<F>(&mut self, messages: F) -> Inboxes
    where
        F: FnMut(usize) -> Vec<(usize, Vec<Word>)>,
    {
        self.route_inner(messages, false)
    }

    /// Like [`Clique::route`], but for data-dependent (non-oblivious)
    /// patterns: each message is charged one extra word carrying its
    /// destination, which the relay needs in order to forward it.
    pub fn route_dynamic<F>(&mut self, messages: F) -> Inboxes
    where
        F: FnMut(usize) -> Vec<(usize, Vec<Word>)>,
    {
        self.route_inner(messages, true)
    }

    /// [`Clique::route`] with the per-node generator evaluated on the
    /// configured executor. Requires a `Fn + Sync` generator; relay
    /// assignment, round costs, and delivered inboxes are identical to the
    /// sequential primitive (messages are merged back in node order before
    /// relays are drawn).
    pub fn route_par<F>(&mut self, messages: F) -> Inboxes
    where
        F: Fn(usize) -> Vec<(usize, Vec<Word>)> + Sync,
    {
        // Fail fast before any generator fan-out, like `route` does.
        self.require_unicast("route");
        // Fan the generator out, then replay the results through the
        // sequential primitive (map returns them in node order), so the
        // validation/collection logic exists once.
        let mut per_node = self.exec.map(self.n, &messages).into_iter();
        self.route_inner(|_| per_node.next().expect("one result per node"), false)
    }

    /// [`Clique::route_dynamic`] with the per-node generator evaluated on
    /// the configured executor (data-dependent patterns: one header word is
    /// charged per message, exactly like the sequential primitive).
    pub fn route_dynamic_par<F>(&mut self, messages: F) -> Inboxes
    where
        F: Fn(usize) -> Vec<(usize, Vec<Word>)> + Sync,
    {
        // Fail fast before any generator fan-out, like `route_dynamic` does.
        self.require_unicast("route");
        let mut per_node = self.exec.map(self.n, &messages).into_iter();
        self.route_inner(|_| per_node.next().expect("one result per node"), true)
    }

    fn route_inner<F>(&mut self, mut messages: F, charge_headers: bool) -> Inboxes
    where
        F: FnMut(usize) -> Vec<(usize, Vec<Word>)>,
    {
        self.require_unicast("route");
        let n = self.n;
        // (src, dst, words) triples, collected up front.
        let mut msgs: Vec<(usize, usize, Vec<Word>)> = Vec::new();
        for v in 0..n {
            for (dst, words) in messages(v) {
                assert!(dst < n, "route destination {dst} out of range (n={n})");
                if !words.is_empty() {
                    msgs.push((v, dst, words));
                }
            }
        }
        // Assign each word a relay, balancing both the (src -> relay) and
        // (relay -> dst) phases. Relays are drawn by a deterministic hash
        // with power-of-two-choices (the less loaded of two candidates),
        // which keeps per-link loads within a small constant of the ideal
        // ⌈load/n⌉ — the guarantee of the routing schemes the paper invokes.
        //
        // Both phases physically travel through the transport: each word
        // (plus its destination header when the pattern is data-dependent)
        // is shipped to its relay, the round barrier runs, and the relays'
        // forwards are shipped and flushed in turn. Charged loads come from
        // the fabric's accounting of that traffic.
        let mut a_out = vec![0usize; n * n];
        let mut b_out = vec![0usize; n * n];
        let mut relays: Vec<Vec<usize>> = Vec::with_capacity(msgs.len());
        for (src, dst, words) in &msgs {
            let mut msg_relays = Vec::with_capacity(words.len());
            for (j, w) in words.iter().enumerate() {
                let h = splitmix(
                    self.cfg.route_seed ^ ((*src as u64) << 42) ^ ((*dst as u64) << 21) ^ j as u64,
                );
                let r1 = (h % n as u64) as usize;
                let relay = match self.cfg.relay_policy {
                    RelayPolicy::SingleHash => r1,
                    RelayPolicy::TwoChoice => {
                        let r2 = ((h >> 32) % n as u64) as usize;
                        let cost = |r: usize| a_out[src * n + r].max(b_out[r * n + dst]);
                        if cost(r1) <= cost(r2) {
                            r1
                        } else {
                            r2
                        }
                    }
                };
                let payload = if charge_headers { 2 } else { 1 };
                a_out[src * n + relay] += payload;
                b_out[relay * n + dst] += payload;
                if charge_headers {
                    self.net.enqueue(*src, relay, &[*w, *dst as Word]);
                } else {
                    self.net.enqueue(*src, relay, &[*w]);
                }
                msg_relays.push(relay);
            }
            relays.push(msg_relays);
        }
        let (_, phase_a) = self.net.flush();
        self.charge_loads(&phase_a);

        // Phase B: every relay forwards its words to their destinations.
        for ((_src, dst, words), msg_relays) in msgs.iter().zip(&relays) {
            for (w, &relay) in words.iter().zip(msg_relays) {
                if charge_headers {
                    self.net.enqueue(relay, *dst, &[*w, *dst as Word]);
                } else {
                    self.net.enqueue(relay, *dst, &[*w]);
                }
            }
        }
        let (_, phase_b) = self.net.flush();
        self.charge_loads(&phase_b);

        // Deliver whole messages in collection order: per-link word streams
        // are interleaved across relays on the wire, so reassembly per
        // (dst, src) pair is modelled (the pattern is known; headers were
        // charged when it is not), and the concatenation is identical to
        // the historical word-by-word push.
        let mut inboxes = Inboxes::new(n);
        for (src, dst, words) in msgs {
            inboxes.push(dst, src, words);
        }
        inboxes
    }

    /// Runs one [`NodeProgram`] per node on the runtime engine, charging the
    /// executed link-level rounds and words to this clique's accounting (and
    /// pattern fingerprints, when recording is enabled). Returns the final
    /// program states in node order.
    ///
    /// This is the opt-in alternative to the closure primitives: algorithms
    /// expressed as per-node state machines are driven round-by-round by
    /// [`cc_runtime::Engine`] on the configured executor, with results
    /// bit-identical across backends.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != self.n()`, or in the broadcast clique
    /// (the engine's unicast sends would violate [`Mode::Broadcast`]).
    pub fn run_programs<P: NodeProgram>(&mut self, programs: Vec<P>) -> Vec<P> {
        self.require_unicast("run_programs");
        assert_eq!(programs.len(), self.n, "need exactly one program per node");
        let engine = Engine::with_executor(self.exec.clone());
        let stats = &mut self.stats;
        // Every engine round barrier is a transport rendezvous: outboxes
        // ship onto the configured fabric, which delivers them and accounts
        // the traffic. On the in-memory backend this is behaviourally
        // identical to the engine's built-in delivery.
        let mut fabric = TransportFabric::new(self.net.transport_mut());
        let report = engine.run_traced_on(&mut fabric, programs, |loads| {
            stats.record_fingerprint(loads.iter());
        });
        stats.charge(report.rounds, report.words);
        self.sync_sim_time();
        report.programs
    }

    /// [`Clique::run_programs`] for [`WireProgram`]s: when the configured
    /// fabric hosts program-resident sessions (a `tcp-peer` transport), the
    /// encoded program states are shipped to its workers once, rounds
    /// proceed worker-to-worker with the orchestrator brokering only the
    /// barrier, and the final states are decoded back. On every other
    /// fabric this is exactly [`Clique::run_programs`]. Results, rounds,
    /// words, and pattern fingerprints are bit-identical either way — the
    /// determinism tests pin all four across both modes.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != self.n()`, or in the broadcast clique.
    pub fn run_wire_programs<P: WireProgram>(&mut self, programs: Vec<P>) -> Vec<P> {
        self.require_unicast("run_programs");
        assert_eq!(programs.len(), self.n, "need exactly one program per node");
        let engine = Engine::with_executor(self.exec.clone());
        let stats = &mut self.stats;
        let mut fabric = TransportFabric::new(self.net.transport_mut());
        let report = engine.run_wire_traced_on(&mut fabric, programs, |loads| {
            stats.record_fingerprint(loads.iter());
        });
        stats.charge(report.rounds, report.words);
        self.sync_sim_time();
        report.programs
    }

    /// One-to-all broadcast: every node sends the *same* word to all others.
    /// Costs exactly one round. Returns the vector of broadcast words
    /// (identical knowledge at every node).
    pub fn broadcast<F>(&mut self, mut word_of: F) -> Vec<Word>
    where
        F: FnMut(usize) -> Word,
    {
        let n = self.n;
        let words: Vec<Word> = (0..n).map(&mut word_of).collect();
        for (v, &w) in words.iter().enumerate() {
            self.net.enqueue_broadcast(v, vec![w].into());
        }
        let round = self.net.flush_full();
        self.charge_loads(&round.loads);
        // The returned knowledge is what the fabric delivered (node 0's
        // view; every node's view is identical by the broadcast contract).
        let delivered: Vec<Word> = (0..n)
            .map(|src| round.inboxes[0].broadcast[src][0][0])
            .collect();
        debug_assert_eq!(delivered, words);
        delivered
    }

    /// Sequence broadcast: node `v` sends the same `kᵥ`-word sequence to all
    /// others; the step costs `max kᵥ` rounds. Returns per-source sequences
    /// (identical knowledge at every node).
    pub fn broadcast_vec<F>(&mut self, mut words_of: F) -> Vec<Vec<Word>>
    where
        F: FnMut(usize) -> Vec<Word>,
    {
        let n = self.n;
        let seqs: Vec<Vec<Word>> = (0..n).map(&mut words_of).collect();
        for (v, seq) in seqs.iter().enumerate() {
            if !seq.is_empty() {
                self.net.enqueue_broadcast(v, Arc::from(seq.as_slice()));
            }
        }
        let round = self.net.flush_full();
        self.charge_loads(&round.loads);
        let delivered: Vec<Vec<Word>> = (0..n)
            .map(|src| {
                round.inboxes[0].broadcast[src]
                    .iter()
                    .flat_map(|slab| slab.iter().copied())
                    .collect()
            })
            .collect();
        debug_assert_eq!(delivered, seqs);
        delivered
    }

    /// "Learn everything" (the gather pattern of Dolev et al.): every node
    /// contributes a word list, and every node ends up knowing the union.
    /// Words are first spread evenly over relay nodes and then broadcast, so
    /// the cost is `O(⌈T/n⌉)` rounds for `T` total words.
    ///
    /// The returned vector is the concatenation of all contributions in
    /// `(source, index)` order — identical at every node. Contributions must
    /// be self-describing (e.g. packed edges): source attribution is not
    /// transmitted.
    pub fn gossip<F>(&mut self, mut words_of: F) -> Vec<Word>
    where
        F: FnMut(usize) -> Vec<Word>,
    {
        let contributions: Vec<Vec<Word>> = (0..self.n).map(&mut words_of).collect();
        self.gossip_inner(contributions)
    }

    /// [`Clique::gossip`] with the per-node contribution generator
    /// evaluated on the configured executor. Requires a `Fn + Sync`
    /// generator; relay assignment, round costs, and the returned union are
    /// identical to the sequential primitive.
    pub fn gossip_par<F>(&mut self, words_of: F) -> Vec<Word>
    where
        F: Fn(usize) -> Vec<Word> + Sync,
    {
        let contributions = self.exec.map(self.n, &words_of);
        self.gossip_inner(contributions)
    }

    fn gossip_inner(&mut self, contributions: Vec<Vec<Word>>) -> Vec<Word> {
        let n = self.n;
        if self.cfg.mode == Mode::Broadcast {
            // In the broadcast clique each node can only broadcast its own
            // words: cost max kᵥ rounds.
            let seqs = self.broadcast_vec(|v| contributions[v].clone());
            return seqs.into_iter().flatten().collect();
        }

        // Phase A: spread words over relays (balanced). Each contributed
        // word physically travels to its relay through the transport, and
        // the phase is charged from the fabric's accounting.
        let mut relay_load = vec![0usize; n];
        let mut assigned: Vec<Vec<Word>> = vec![Vec::new(); n];
        for (src, words) in contributions.iter().enumerate() {
            for (j, w) in words.iter().enumerate() {
                let relay =
                    splitmix(self.cfg.route_seed ^ ((src as u64) << 32) ^ j as u64) as usize % n;
                relay_load[relay] += 1;
                assigned[relay].push(*w);
                self.net.enqueue(src, relay, &[*w]);
            }
        }
        let (_, phase_a) = self.net.flush();
        self.charge_loads(&phase_a);

        // Phase B: each relay broadcasts its assigned words, one per round.
        let max_assigned = relay_load.iter().copied().max().unwrap_or(0) as u64;
        let total: u64 = relay_load.iter().map(|&x| x as u64).sum();
        for (r, slab) in assigned.into_iter().enumerate() {
            if !slab.is_empty() {
                self.net.enqueue_broadcast(r, slab.into());
            }
        }
        let round = self.net.flush_full();
        debug_assert_eq!(round.loads.rounds(), max_assigned);
        debug_assert_eq!(round.loads.words(), total * (n as u64 - 1));
        self.charge_loads(&round.loads);

        contributions.into_iter().flatten().collect()
    }

    /// Global sum: every node contributes an `i64`; all nodes learn the total
    /// in one round.
    pub fn sum_all<F>(&mut self, mut value_of: F) -> i64
    where
        F: FnMut(usize) -> i64,
    {
        let words = self.broadcast(|v| value_of(v) as u64);
        words.into_iter().map(|w| w as i64).sum()
    }

    /// Global disjunction: all nodes learn whether any node contributed
    /// `true`, in one round.
    pub fn or_all<F>(&mut self, mut flag_of: F) -> bool
    where
        F: FnMut(usize) -> bool,
    {
        let words = self.broadcast(|v| u64::from(flag_of(v)));
        words.into_iter().any(|w| w != 0)
    }

    /// Global maximum over per-node `i64` contributions, in one round.
    pub fn max_all<F>(&mut self, mut value_of: F) -> i64
    where
        F: FnMut(usize) -> i64,
    {
        let words = self.broadcast(|v| value_of(v) as u64);
        words.into_iter().map(|w| w as i64).max().expect("n >= 2")
    }

    /// Global minimum over per-node `i64` contributions, in one round.
    pub fn min_all<F>(&mut self, mut value_of: F) -> i64
    where
        F: FnMut(usize) -> i64,
    {
        let words = self.broadcast(|v| value_of(v) as u64);
        words.into_iter().map(|w| w as i64).min().expect("n >= 2")
    }
}

/// SplitMix64 finaliser; deterministic relay-balancing hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_costs_one_round() {
        let mut c = Clique::new(5);
        let words = c.broadcast(|v| (v * v) as u64);
        assert_eq!(words, vec![0, 1, 4, 9, 16]);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn exchange_rounds_equal_max_link_queue() {
        let mut c = Clique::new(4);
        let ib = c.exchange(|v| {
            if v == 0 {
                vec![(1, vec![1, 2, 3, 4, 5])] // 5 words on one link
            } else {
                vec![]
            }
        });
        assert_eq!(c.rounds(), 5);
        assert_eq!(ib.received(1, 0).len(), 5);
    }

    #[test]
    fn route_balances_hot_links() {
        // Node 0 sends 100 words to node 1. Direct exchange would need 100
        // rounds; balanced routing needs about 2 * ceil(100/16) plus hash
        // imbalance.
        let n = 16;
        let mut c = Clique::new(n);
        let ib = c.route(|v| {
            if v == 0 {
                vec![(1, (0..100).collect())]
            } else {
                vec![]
            }
        });
        assert_eq!(ib.received(1, 0).len(), 100);
        assert!(
            c.rounds() < 40,
            "routed rounds {} should beat direct 100",
            c.rounds()
        );
    }

    #[test]
    fn route_dynamic_charges_headers() {
        let n = 8;
        let mut a = Clique::new(n);
        a.route(|v| {
            if v == 0 {
                vec![(1, (0..64).collect())]
            } else {
                vec![]
            }
        });
        let mut b = Clique::new(n);
        b.route_dynamic(|v| {
            if v == 0 {
                vec![(1, (0..64).collect())]
            } else {
                vec![]
            }
        });
        assert!(b.rounds() > a.rounds(), "headers must cost extra rounds");
        assert!(b.stats().words() >= 2 * a.stats().words() - 1);
    }

    #[test]
    fn route_balanced_instance_is_constant_rounds() {
        // Every node sends one word to every other node: per-node load n-1,
        // which Lenzen routes in O(1) rounds.
        for n in [8, 16, 32, 64] {
            let mut c = Clique::new(n);
            c.route(|v| {
                (0..n)
                    .filter(|&u| u != v)
                    .map(|u| (u, vec![v as u64]))
                    .collect()
            });
            assert!(c.rounds() <= 8, "n={n}: rounds {} not O(1)", c.rounds());
        }
    }

    #[test]
    fn gossip_delivers_union_with_linear_speedup() {
        let n = 16;
        let k = 8; // words per node
        let mut c = Clique::new(n);
        let all = c.gossip(|v| (0..k).map(|j| (v * k + j) as u64).collect());
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..(n * k) as u64).collect::<Vec<_>>());
        // Naive broadcast_vec would need k = 8 rounds minimum and total/(n-1)
        // is the floor; allow a small constant over the ideal.
        let ideal = (n * k) as u64 / (n as u64 - 1);
        assert!(
            c.rounds() <= 3 * ideal + 8,
            "rounds {} vs ideal {}",
            c.rounds(),
            ideal
        );
    }

    #[test]
    fn reducers_agree_with_local_fold() {
        let mut c = Clique::new(6);
        assert_eq!(c.sum_all(|v| v as i64), 15);
        assert!(c.or_all(|v| v == 3));
        assert!(!c.or_all(|_| false));
        assert_eq!(c.max_all(|v| -(v as i64)), 0);
        assert_eq!(c.min_all(|v| v as i64 * 2), 0);
        assert_eq!(c.rounds(), 5);
    }

    #[test]
    fn phases_attribute_rounds() {
        let mut c = Clique::new(4);
        c.phase("setup", |c| {
            c.broadcast(|v| v as u64);
        });
        c.phase("work", |c| {
            c.broadcast(|v| v as u64);
            c.broadcast(|v| v as u64);
        });
        assert_eq!(c.stats().phase("setup").unwrap().rounds, 1);
        assert_eq!(c.stats().phase("work").unwrap().rounds, 2);
        assert_eq!(c.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "broadcast congested clique")]
    fn broadcast_mode_forbids_exchange() {
        let cfg = CliqueConfig {
            mode: Mode::Broadcast,
            ..CliqueConfig::default()
        };
        let mut c = Clique::with_config(4, cfg);
        let _ = c.exchange(|_| vec![]);
    }

    #[test]
    fn broadcast_mode_gossip_costs_max_contribution() {
        let cfg = CliqueConfig {
            mode: Mode::Broadcast,
            ..CliqueConfig::default()
        };
        let mut c = Clique::with_config(4, cfg);
        let all = c.gossip(|v| vec![v as u64; v + 1]);
        assert_eq!(all.len(), 1 + 2 + 3 + 4);
        assert_eq!(c.rounds(), 4); // max contribution, no n-fold speedup
    }

    #[test]
    fn pattern_fingerprints_are_input_independent_for_fixed_pattern() {
        let run = |payload: u64| {
            let cfg = CliqueConfig {
                record_patterns: true,
                ..CliqueConfig::default()
            };
            let mut c = Clique::with_config(4, cfg);
            c.exchange(|v| vec![((v + 1) % 4, vec![payload + v as u64])]);
            c.stats().pattern_fingerprints().to_vec()
        };
        assert_eq!(run(10), run(999));
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_clique_rejected() {
        let _ = Clique::new(1);
    }

    #[test]
    fn reset_replays_a_fresh_clique_bit_for_bit() {
        let cfg = CliqueConfig {
            record_patterns: true,
            ..CliqueConfig::default()
        };
        let workload = |c: &mut Clique| {
            let ib = c.route(|v| vec![((v + 1) % 6, vec![v as u64 * 3, v as u64])]);
            let sum = c.sum_all(|v| v as i64);
            let received: Vec<_> = (0..6)
                .map(|d| ib.received(d, (d + 5) % 6).to_vec())
                .collect();
            (
                received,
                sum,
                c.rounds(),
                c.stats().words(),
                c.stats().pattern_fingerprints().to_vec(),
            )
        };
        let mut fresh = Clique::with_config(6, cfg.clone());
        let reference = workload(&mut fresh);

        // A warm instance, reset between runs, replays the fresh run
        // exactly — the contract warm pools rely on.
        let mut warm = Clique::with_config(6, cfg);
        for _ in 0..3 {
            warm.reset();
            assert_eq!(warm.rounds(), 0, "reset zeroes the accounting");
            assert_eq!(workload(&mut warm), reference);
        }
        assert!(warm.transport_epochs() > 0, "epochs survive resets");
    }

    #[test]
    fn netsim_conditioning_changes_sim_time_but_nothing_else() {
        use cc_netsim::NetsimProfile;
        let workload = |cfg: CliqueConfig| {
            let mut c = Clique::with_config(8, cfg);
            let ib = c.route(|v| vec![((v + 3) % 8, vec![v as u64 * 7, v as u64])]);
            let sum = c.sum_all(|v| v as i64);
            let received: Vec<_> = (0..8)
                .map(|d| ib.received(d, (d + 5) % 8).to_vec())
                .collect();
            let sim = c.sim_time_ns();
            (
                (
                    received,
                    sum,
                    c.rounds(),
                    c.stats().words(),
                    c.stats().pattern_fingerprints().to_vec(),
                ),
                sim,
                c.net_retransmits(),
            )
        };
        let base = CliqueConfig {
            record_patterns: true,
            netsim: NetsimConfig::default(), // off
            ..CliqueConfig::default()
        };
        let lossy = CliqueConfig {
            netsim: NetsimConfig {
                profile: NetsimProfile::Lossy,
                seed: 42,
            },
            ..base.clone()
        };
        let (reference, off_sim, off_rx) = workload(base);
        assert_eq!((off_sim, off_rx), (0, 0), "off charges no simulated time");
        let (outcome_a, sim_a, _) = workload(lossy.clone());
        let (outcome_b, sim_b, _) = workload(lossy);
        assert_eq!(outcome_a, reference, "conditioning must not change results");
        assert_eq!(outcome_b, reference);
        assert!(sim_a > 0, "lossy profile must accrue simulated time");
        assert_eq!(sim_a, sim_b, "sim time is a pure function of the seed");
    }

    #[test]
    fn netsim_sim_time_attributes_to_phases_and_resets() {
        use cc_netsim::NetsimProfile;
        let cfg = CliqueConfig {
            netsim: NetsimConfig {
                profile: NetsimProfile::Lan,
                seed: 9,
            },
            ..CliqueConfig::default()
        };
        let mut c = Clique::with_config(4, cfg);
        c.phase("ping", |c| {
            c.broadcast(|v| v as u64);
        });
        let phase_sim = c.stats().phase("ping").unwrap().sim_time_ns;
        assert!(phase_sim > 0, "phase must see the conditioned barrier");
        assert_eq!(c.sim_time_ns(), phase_sim);
        c.reset();
        assert_eq!(c.sim_time_ns(), 0, "reset re-anchors simulated time");
        c.broadcast(|v| v as u64);
        assert!(c.sim_time_ns() > 0, "post-reset barriers accrue fresh time");
    }

    #[test]
    fn shared_executor_handle_is_used_not_rebuilt() {
        let exec = Executor::new(ExecutorKind::Parallel { threads: 3 });
        assert_eq!(exec.threads_spawned(), 2);
        let a = Clique::with_config_and_executor(4, CliqueConfig::default(), exec.clone());
        let b = Clique::with_config_and_executor(4, CliqueConfig::default(), exec.clone());
        // Neither clique spawned workers of its own: both share the pool.
        assert_eq!(exec.threads_spawned(), 2);
        assert_eq!(a.executor().threads_spawned(), 2);
        assert_eq!(b.executor().threads_spawned(), 2);
    }
}
