//! Words and word-level encodings.
//!
//! The congested clique allows `O(log n)` bits per link per round; this crate
//! models a message word as a `u64`. Values that require `b` bits are charged
//! `⌈b/64⌉` words by their [`AsWords`] encoding, which reproduces the
//! `b / log n` multiplicative factor from the paper for wide entries (e.g.
//! the degree-capped polynomials used for distance products).

/// A single `O(log n)`-bit message word.
pub type Word = u64;

/// Packs two 32-bit values into a single [`Word`].
///
/// Useful for transmitting index pairs such as graph edges `(u, v)` in one
/// word, matching the paper's convention that a pair of node identifiers fits
/// in `O(log n)` bits.
///
/// # Panics
///
/// Panics if either value does not fit in 32 bits.
///
/// # Examples
///
/// ```rust
/// use cc_clique::{pack_pair, unpack_pair};
/// let w = pack_pair(3, 17);
/// assert_eq!(unpack_pair(w), (3, 17));
/// ```
#[must_use]
pub fn pack_pair(a: usize, b: usize) -> Word {
    assert!(
        a <= u32::MAX as usize && b <= u32::MAX as usize,
        "pair element exceeds 32 bits"
    );
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pack_pair`].
#[must_use]
pub fn unpack_pair(w: Word) -> (usize, usize) {
    ((w >> 32) as usize, (w & 0xffff_ffff) as usize)
}

/// Incremental writer used by [`AsWords::write_words`].
///
/// A thin wrapper around `Vec<Word>` so that encoders cannot observe or
/// rewrite previously written traffic.
#[derive(Debug, Default)]
pub struct WordWriter {
    buf: Vec<Word>,
}

impl WordWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one word.
    pub fn push(&mut self, w: Word) {
        self.buf.push(w);
    }

    /// Number of words written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the written words.
    #[must_use]
    pub fn into_words(self) -> Vec<Word> {
        self.buf
    }
}

/// Sequential reader used by [`AsWords::read_words`].
///
/// # Examples
///
/// ```rust
/// use cc_clique::WordReader;
/// let mut r = WordReader::new(&[1, 2, 3]);
/// assert_eq!(r.next(), 1);
/// assert_eq!(r.remaining(), 2);
/// ```
#[derive(Debug)]
pub struct WordReader<'a> {
    words: &'a [Word],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// Creates a reader over a word slice.
    #[must_use]
    pub fn new(words: &'a [Word]) -> Self {
        Self { words, pos: 0 }
    }

    /// Reads the next word.
    ///
    /// # Panics
    ///
    /// Panics if the reader is exhausted; message framing in this crate is
    /// static, so under-reads are programming errors.
    // Not an Iterator: reads are infallible by contract and panic on
    // underflow, which `Iterator::next`'s Option shape would obscure.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Word {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .expect("word stream exhausted");
        self.pos += 1;
        w
    }

    /// Number of unread words.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// Returns `true` when all words have been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

/// Word-level wire encoding for values sent through the clique.
///
/// Implementations must be *self-framing*: `read_words` must consume exactly
/// the words produced by `write_words`, without external length information.
/// Fixed-width values (integers) need no framing; variable-width values
/// (polynomials) embed their own length and are charged for it.
pub trait AsWords: Sized {
    /// Appends the encoding of `self` to `out`.
    fn write_words(&self, out: &mut WordWriter);

    /// Decodes one value from the reader.
    fn read_words(r: &mut WordReader<'_>) -> Self;

    /// Convenience: encodes `self` into a fresh vector.
    fn to_words(&self) -> Vec<Word> {
        let mut w = WordWriter::new();
        self.write_words(&mut w);
        w.into_words()
    }
}

impl AsWords for u64 {
    fn write_words(&self, out: &mut WordWriter) {
        out.push(*self);
    }
    fn read_words(r: &mut WordReader<'_>) -> Self {
        r.next()
    }
}

impl AsWords for i64 {
    fn write_words(&self, out: &mut WordWriter) {
        out.push(*self as u64);
    }
    fn read_words(r: &mut WordReader<'_>) -> Self {
        r.next() as i64
    }
}

impl AsWords for bool {
    fn write_words(&self, out: &mut WordWriter) {
        out.push(u64::from(*self));
    }
    fn read_words(r: &mut WordReader<'_>) -> Self {
        r.next() != 0
    }
}

impl AsWords for usize {
    fn write_words(&self, out: &mut WordWriter) {
        out.push(*self as u64);
    }
    fn read_words(r: &mut WordReader<'_>) -> Self {
        r.next() as usize
    }
}

impl<A: AsWords, B: AsWords> AsWords for (A, B) {
    fn write_words(&self, out: &mut WordWriter) {
        self.0.write_words(out);
        self.1.write_words(out);
    }
    fn read_words(r: &mut WordReader<'_>) -> Self {
        let a = A::read_words(r);
        let b = B::read_words(r);
        (a, b)
    }
}

/// Encodes a slice of values back-to-back (no length prefix).
pub fn write_all<T: AsWords>(values: &[T]) -> Vec<Word> {
    let mut w = WordWriter::new();
    for v in values {
        v.write_words(&mut w);
    }
    w.into_words()
}

/// Decodes `count` values from a word slice.
///
/// # Panics
///
/// Panics if the slice does not contain exactly `count` encoded values.
pub fn read_exact<T: AsWords>(words: &[Word], count: usize) -> Vec<T> {
    let mut r = WordReader::new(words);
    let out: Vec<T> = (0..count).map(|_| T::read_words(&mut r)).collect();
    assert!(
        r.is_exhausted(),
        "trailing words after decoding {count} values"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (a, b) in [(0, 0), (1, 2), (u32::MAX as usize, 5)] {
            assert_eq!(unpack_pair(pack_pair(a, b)), (a, b));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn pack_rejects_wide() {
        let _ = pack_pair(1 << 33, 0);
    }

    #[test]
    fn scalar_roundtrips() {
        let vals: Vec<i64> = vec![-5, 0, 7, i64::MAX, i64::MIN];
        let words = write_all(&vals);
        assert_eq!(words.len(), vals.len());
        let back: Vec<i64> = read_exact(&words, vals.len());
        assert_eq!(back, vals);
    }

    #[test]
    fn tuple_roundtrip() {
        let v: (i64, u64) = (-9, 12);
        let words = v.to_words();
        assert_eq!(words.len(), 2);
        let mut r = WordReader::new(&words);
        let back = <(i64, u64)>::read_words(&mut r);
        assert_eq!(back, v);
        assert!(r.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "word stream exhausted")]
    fn reader_panics_on_underflow() {
        let mut r = WordReader::new(&[]);
        let _ = r.next();
    }
}
