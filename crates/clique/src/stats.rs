//! Round and traffic accounting.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Per-phase round, word, and wall-clock counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Synchronous rounds executed while the phase was active.
    pub rounds: u64,
    /// Total words delivered while the phase was active.
    pub words: u64,
    /// Wall-clock spent inside the phase, in nanoseconds. Like rounds and
    /// words, nested phases attribute their time to every enclosing phase
    /// (an enclosing phase's interval contains its inner phases').
    pub wall_ns: u64,
    /// Simulated network time accrued while the phase was active, in
    /// nanoseconds. Zero unless a `cc-netsim` condition profile is active
    /// (`CC_NETSIM` / [`crate::CliqueConfig::netsim`]); follows the same
    /// nested-attribution rule as rounds and words.
    pub sim_time_ns: u64,
}

/// Cumulative execution statistics for a [`crate::Clique`].
///
/// Phases are named by [`crate::Clique::phase`]; nested phases attribute their
/// cost to every enclosing phase, so a top-level phase reports the full cost
/// of the algorithm it wraps. Wall-clock follows the same rule: each phase is
/// charged the real time between its push and its pop, which spans any inner
/// phases.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    rounds: u64,
    words: u64,
    sim_time_ns: u64,
    phases: BTreeMap<String, PhaseStats>,
    stack: Vec<(String, Instant)>,
    /// Fingerprints of flush-level communication patterns (for obliviousness
    /// tests); populated only when pattern recording is enabled.
    fingerprints: Vec<u64>,
    record_patterns: bool,
}

impl Stats {
    pub(crate) fn new(record_patterns: bool) -> Self {
        Self {
            record_patterns,
            ..Self::default()
        }
    }

    /// Total rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total words delivered so far.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Total simulated network time accrued so far, in nanoseconds. Zero
    /// unless a `cc-netsim` condition profile is active; for a fixed
    /// profile and seed the value is bit-reproducible across runs.
    #[must_use]
    pub fn sim_time_ns(&self) -> u64 {
        self.sim_time_ns
    }

    /// Statistics for a named phase, if that phase ever ran.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.phases.get(name).copied()
    }

    /// All phase names seen so far, in lexicographic order.
    pub fn phase_names(&self) -> impl Iterator<Item = &str> {
        self.phases.keys().map(String::as_str)
    }

    /// Fingerprints of each executed flush's communication pattern.
    ///
    /// Two runs with identical fingerprint sequences used identical
    /// communication patterns (same per-link word counts in the same order),
    /// which is the paper's notion of an *oblivious* algorithm.
    #[must_use]
    pub fn pattern_fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    pub(crate) fn charge(&mut self, rounds: u64, words: u64) {
        self.rounds += rounds;
        self.words += words;
        for (name, _) in &self.stack {
            let e = self.phases.entry(name.clone()).or_default();
            e.rounds += rounds;
            e.words += words;
        }
    }

    /// Charges simulated network time, attributing it to every active phase
    /// (the same nesting rule as [`Stats::charge`]).
    pub(crate) fn charge_sim_time(&mut self, sim_ns: u64) {
        if sim_ns == 0 {
            return;
        }
        self.sim_time_ns += sim_ns;
        for (name, _) in &self.stack {
            let e = self.phases.entry(name.clone()).or_default();
            e.sim_time_ns += sim_ns;
        }
    }

    pub(crate) fn push_phase(&mut self, name: &str) {
        self.stack.push((name.to_owned(), Instant::now()));
        self.phases.entry(name.to_owned()).or_default();
    }

    /// Closes the innermost phase, charging its elapsed wall-clock, and
    /// returns `(name, this run's elapsed ns)`. Only the popped frame is
    /// charged here: enclosing frames' own intervals span this one, so
    /// nested attribution falls out when *they* pop.
    pub(crate) fn pop_phase(&mut self) -> (String, u64) {
        let (name, started) = self.stack.pop().expect("phase stack underflow");
        let elapsed = started.elapsed().as_nanos() as u64;
        let e = self.phases.entry(name.clone()).or_default();
        e.wall_ns += elapsed;
        (name, elapsed)
    }

    pub(crate) fn record_fingerprint(
        &mut self,
        loads: impl Iterator<Item = (usize, usize, usize)>,
    ) {
        if !self.record_patterns {
            return;
        }
        // FNV-1a over the (src, dst, len) triples in iteration order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (s, d, l) in loads {
            mix(s as u64);
            mix(d as u64);
            mix(l as u64);
        }
        self.fingerprints.push(h);
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sim_time_ns > 0 {
            writeln!(
                f,
                "rounds={} words={} sim={:.3}ms",
                self.rounds,
                self.words,
                self.sim_time_ns as f64 / 1_000_000.0
            )?;
        } else {
            writeln!(f, "rounds={} words={}", self.rounds, self.words)?;
        }
        for (name, p) in &self.phases {
            write!(
                f,
                "  {name}: rounds={} words={} wall={:.3}ms",
                p.rounds,
                p.words,
                p.wall_ns as f64 / 1_000_000.0
            )?;
            if p.sim_time_ns > 0 {
                write!(f, " sim={:.3}ms", p.sim_time_ns as f64 / 1_000_000.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burns a little CPU so elapsed intervals are reliably non-zero
    /// (sleeping would slow the suite for no extra confidence).
    fn spin() {
        let mut acc = 0u64;
        for i in 0..20_000u64 {
            acc = acc.wrapping_add(std::hint::black_box(i).wrapping_mul(31));
        }
        std::hint::black_box(acc);
    }

    #[test]
    fn nested_phase_attribution() {
        let mut s = Stats::new(false);
        s.push_phase("outer");
        s.charge(1, 10);
        s.push_phase("inner");
        s.charge(2, 20);
        s.pop_phase();
        s.charge(3, 30);
        s.pop_phase();
        assert_eq!(s.rounds(), 6);
        assert_eq!(s.words(), 60);
        let outer = s.phase("outer").unwrap();
        assert_eq!((outer.rounds, outer.words), (6, 60));
        let inner = s.phase("inner").unwrap();
        assert_eq!((inner.rounds, inner.words), (2, 20));
        assert!(s.phase("missing").is_none());
    }

    #[test]
    fn nested_phases_attribute_wall_clock_to_every_enclosing_phase() {
        let mut s = Stats::new(false);
        s.push_phase("outer");
        spin();
        s.push_phase("inner");
        spin();
        let (name, inner_ns) = s.pop_phase();
        assert_eq!(name, "inner");
        assert!(inner_ns > 0, "spinning must register on the clock");
        spin();
        let (name, outer_ns) = s.pop_phase();
        assert_eq!(name, "outer");
        assert_eq!(s.phase("inner").unwrap().wall_ns, inner_ns);
        assert_eq!(s.phase("outer").unwrap().wall_ns, outer_ns);
        // The outer interval spans the inner one plus its own work.
        assert!(
            outer_ns > inner_ns,
            "outer ({outer_ns}ns) must include inner ({inner_ns}ns)"
        );
    }

    #[test]
    fn repeated_phases_accumulate_monotonically() {
        let mut s = Stats::new(false);
        let mut last_total = 0;
        let mut elapsed_sum = 0;
        for _ in 0..3 {
            s.push_phase("mm");
            spin();
            let (_, elapsed_ns) = s.pop_phase();
            assert!(elapsed_ns > 0, "each run must register on the clock");
            elapsed_sum += elapsed_ns;
            let total = s.phase("mm").unwrap().wall_ns;
            assert!(
                total > last_total,
                "wall-clock must be monotone across runs"
            );
            last_total = total;
        }
        assert_eq!(s.phase("mm").unwrap().wall_ns, elapsed_sum);
    }

    #[test]
    fn fingerprints_detect_pattern_changes() {
        let mut a = Stats::new(true);
        a.record_fingerprint([(0, 1, 3), (1, 0, 2)].into_iter());
        let mut b = Stats::new(true);
        b.record_fingerprint([(0, 1, 3), (1, 0, 2)].into_iter());
        assert_eq!(a.pattern_fingerprints(), b.pattern_fingerprints());
        let mut c = Stats::new(true);
        c.record_fingerprint([(0, 1, 4), (1, 0, 2)].into_iter());
        assert_ne!(a.pattern_fingerprints(), c.pattern_fingerprints());
    }

    #[test]
    fn display_is_nonempty() {
        let s = Stats::new(false);
        assert!(!format!("{s}").is_empty());
    }
}
