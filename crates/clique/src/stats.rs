//! Round and traffic accounting.

use std::collections::BTreeMap;
use std::fmt;

/// Per-phase round and word counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Synchronous rounds executed while the phase was active.
    pub rounds: u64,
    /// Total words delivered while the phase was active.
    pub words: u64,
}

/// Cumulative execution statistics for a [`crate::Clique`].
///
/// Phases are named by [`crate::Clique::phase`]; nested phases attribute their
/// cost to every enclosing phase, so a top-level phase reports the full cost
/// of the algorithm it wraps.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    rounds: u64,
    words: u64,
    phases: BTreeMap<String, PhaseStats>,
    stack: Vec<String>,
    /// Fingerprints of flush-level communication patterns (for obliviousness
    /// tests); populated only when pattern recording is enabled.
    fingerprints: Vec<u64>,
    record_patterns: bool,
}

impl Stats {
    pub(crate) fn new(record_patterns: bool) -> Self {
        Self {
            record_patterns,
            ..Self::default()
        }
    }

    /// Total rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total words delivered so far.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Statistics for a named phase, if that phase ever ran.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.phases.get(name).copied()
    }

    /// All phase names seen so far, in lexicographic order.
    pub fn phase_names(&self) -> impl Iterator<Item = &str> {
        self.phases.keys().map(String::as_str)
    }

    /// Fingerprints of each executed flush's communication pattern.
    ///
    /// Two runs with identical fingerprint sequences used identical
    /// communication patterns (same per-link word counts in the same order),
    /// which is the paper's notion of an *oblivious* algorithm.
    #[must_use]
    pub fn pattern_fingerprints(&self) -> &[u64] {
        &self.fingerprints
    }

    pub(crate) fn charge(&mut self, rounds: u64, words: u64) {
        self.rounds += rounds;
        self.words += words;
        for name in &self.stack {
            let e = self.phases.entry(name.clone()).or_default();
            e.rounds += rounds;
            e.words += words;
        }
    }

    pub(crate) fn push_phase(&mut self, name: &str) {
        self.stack.push(name.to_owned());
        self.phases.entry(name.to_owned()).or_default();
    }

    pub(crate) fn pop_phase(&mut self) {
        self.stack.pop().expect("phase stack underflow");
    }

    pub(crate) fn record_fingerprint(
        &mut self,
        loads: impl Iterator<Item = (usize, usize, usize)>,
    ) {
        if !self.record_patterns {
            return;
        }
        // FNV-1a over the (src, dst, len) triples in iteration order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (s, d, l) in loads {
            mix(s as u64);
            mix(d as u64);
            mix(l as u64);
        }
        self.fingerprints.push(h);
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rounds={} words={}", self.rounds, self.words)?;
        for (name, p) in &self.phases {
            writeln!(f, "  {name}: rounds={} words={}", p.rounds, p.words)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_phase_attribution() {
        let mut s = Stats::new(false);
        s.push_phase("outer");
        s.charge(1, 10);
        s.push_phase("inner");
        s.charge(2, 20);
        s.pop_phase();
        s.charge(3, 30);
        s.pop_phase();
        assert_eq!(s.rounds(), 6);
        assert_eq!(s.words(), 60);
        assert_eq!(
            s.phase("outer").unwrap(),
            PhaseStats {
                rounds: 6,
                words: 60
            }
        );
        assert_eq!(
            s.phase("inner").unwrap(),
            PhaseStats {
                rounds: 2,
                words: 20
            }
        );
        assert!(s.phase("missing").is_none());
    }

    #[test]
    fn fingerprints_detect_pattern_changes() {
        let mut a = Stats::new(true);
        a.record_fingerprint([(0, 1, 3), (1, 0, 2)].into_iter());
        let mut b = Stats::new(true);
        b.record_fingerprint([(0, 1, 3), (1, 0, 2)].into_iter());
        assert_eq!(a.pattern_fingerprints(), b.pattern_fingerprints());
        let mut c = Stats::new(true);
        c.record_fingerprint([(0, 1, 4), (1, 0, 2)].into_iter());
        assert_ne!(a.pattern_fingerprints(), c.pattern_fingerprints());
    }

    #[test]
    fn display_is_nonempty() {
        let s = Stats::new(false);
        assert!(!format!("{s}").is_empty());
    }
}
