//! Link-level execution: per-round, per-link capacity accounting.

use crate::inbox::Inboxes;
use crate::word::Word;

/// Per-link word counts of one communication step, in deterministic
/// `(src, dst)` order. Used for round accounting and obliviousness
/// fingerprints.
#[derive(Debug, Clone, Default)]
pub struct LinkLoads {
    loads: Vec<(usize, usize, usize)>,
}

impl LinkLoads {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(&mut self, src: usize, dst: usize, words: usize) {
        if words > 0 && src != dst {
            self.loads.push((src, dst, words));
        }
    }

    /// The number of synchronous rounds needed to drain these loads: the
    /// maximum over directed links of the number of words on that link
    /// (each link carries one word per round).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.loads
            .iter()
            .map(|&(_, _, w)| w as u64)
            .max()
            .unwrap_or(0)
    }

    /// Total words crossing links.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.loads.iter().map(|&(_, _, w)| w as u64).sum()
    }

    /// Iterates over `(src, dst, words)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.loads.iter().copied()
    }

    /// Maximum number of words sent by any single node in this step.
    #[must_use]
    pub fn max_out(&self, n: usize) -> usize {
        let mut out = vec![0usize; n];
        for &(s, _, w) in &self.loads {
            out[s] += w;
        }
        out.into_iter().max().unwrap_or(0)
    }

    /// Maximum number of words received by any single node in this step.
    #[must_use]
    pub fn max_in(&self, n: usize) -> usize {
        let mut inc = vec![0usize; n];
        for &(_, d, w) in &self.loads {
            inc[d] += w;
        }
        inc.into_iter().max().unwrap_or(0)
    }
}

/// The physical network: a queue of words per directed link.
///
/// `flush` executes synchronous rounds until all queues drain; in each round a
/// link moves exactly one word, so the number of executed rounds equals the
/// maximum queue length. Self-addressed words (`src == dst`) are local memory
/// moves and cost nothing, matching the model (a node need not use the
/// network to talk to itself).
#[derive(Debug)]
pub struct Network {
    n: usize,
    /// `queues[src * n + dst]`.
    queues: Vec<Vec<Word>>,
}

impl Network {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            queues: vec![Vec::new(); n * n],
        }
    }

    pub(crate) fn enqueue(&mut self, src: usize, dst: usize, words: &[Word]) {
        assert!(
            src < self.n && dst < self.n,
            "node index out of range (n={})",
            self.n
        );
        self.queues[src * self.n + dst].extend_from_slice(words);
    }

    /// Drains all queues, returning the delivered messages and the loads that
    /// determine the round cost.
    pub(crate) fn flush(&mut self) -> (Inboxes, LinkLoads) {
        let n = self.n;
        let mut inboxes = Inboxes::new(n);
        let mut loads = LinkLoads::new();
        for src in 0..n {
            for dst in 0..n {
                let q = &mut self.queues[src * n + dst];
                if q.is_empty() {
                    continue;
                }
                loads.add(src, dst, q.len());
                inboxes.push(dst, src, q.drain(..));
            }
        }
        (inboxes, loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_counts_max_queue_as_rounds() {
        let mut net = Network::new(3);
        net.enqueue(0, 1, &[1, 2, 3]);
        net.enqueue(1, 2, &[4]);
        net.enqueue(2, 0, &[5, 6]);
        let (ib, loads) = net.flush();
        assert_eq!(loads.rounds(), 3);
        assert_eq!(loads.words(), 6);
        assert_eq!(ib.received(1, 0), &[1, 2, 3]);
        assert_eq!(ib.received(2, 1), &[4]);
        assert_eq!(ib.received(0, 2), &[5, 6]);
        // Queues are drained.
        let (_, loads2) = net.flush();
        assert_eq!(loads2.rounds(), 0);
    }

    #[test]
    fn self_messages_are_free() {
        let mut net = Network::new(2);
        net.enqueue(0, 0, &[7, 8, 9]);
        net.enqueue(0, 1, &[1]);
        let (ib, loads) = net.flush();
        assert_eq!(loads.rounds(), 1);
        assert_eq!(loads.words(), 1);
        assert_eq!(ib.received(0, 0), &[7, 8, 9]);
    }

    #[test]
    fn in_out_maxima() {
        let mut loads = LinkLoads::new();
        loads.add(0, 1, 5);
        loads.add(0, 2, 3);
        loads.add(2, 1, 4);
        assert_eq!(loads.max_out(3), 8);
        assert_eq!(loads.max_in(3), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enqueue_validates_indices() {
        let mut net = Network::new(2);
        net.enqueue(0, 5, &[1]);
    }
}
