//! Link-level execution: per-round, per-link capacity accounting.

use crate::inbox::Inboxes;
use crate::word::Word;
// The cost model (`LinkLoads`) lives in `cc_runtime` so that engine-driven
// and flush-driven accounting share one source of truth; this crate
// re-exports it from `lib.rs`.
use cc_runtime::{Executor, LinkLoads};

/// The physical network: a queue of words per directed link.
///
/// `flush` executes synchronous rounds until all queues drain; in each round a
/// link moves exactly one word, so the number of executed rounds equals the
/// maximum queue length. Self-addressed words (`src == dst`) are local memory
/// moves and cost nothing, matching the model (a node need not use the
/// network to talk to itself).
///
/// Queues are laid out destination-major so that one destination's incoming
/// links occupy a contiguous block: under a parallel executor, `flush` shards
/// the drain by destination and each worker owns a disjoint block, replacing
/// the historical `O(n²)` serial queue walk. Loads are merged back into
/// canonical `(src, dst)` order, so round counts and pattern fingerprints are
/// identical to sequential execution.
#[derive(Debug)]
pub struct Network {
    n: usize,
    /// `queues[dst * n + src]` (destination-major; see struct docs).
    queues: Vec<Vec<Word>>,
}

impl Network {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            queues: vec![Vec::new(); n * n],
        }
    }

    pub(crate) fn enqueue(&mut self, src: usize, dst: usize, words: &[Word]) {
        assert!(
            src < self.n && dst < self.n,
            "node index out of range (n={})",
            self.n
        );
        self.queues[dst * self.n + src].extend_from_slice(words);
    }

    /// Drains all queues, returning the delivered messages and the loads that
    /// determine the round cost. The drain is sharded by destination — each
    /// piece of `map_chunks_mut` is one destination's contiguous block of
    /// `n` per-source queues, owned by exactly one worker — and runs the
    /// same code on both backends (a sequential executor processes the
    /// pieces in order inline), so results are bit-identical by
    /// construction.
    pub(crate) fn flush(&mut self, exec: &Executor) -> (Inboxes, LinkLoads) {
        let n = self.n;
        /// One destination's flush result: its link loads and its
        /// per-source delivery row.
        type DstFlush = (Vec<(usize, usize, usize)>, Vec<Vec<Word>>);

        let per_dst: Vec<DstFlush> = exec.map_chunks_mut(&mut self.queues, n, |dst, block| {
            let mut loads = Vec::new();
            let mut row = Vec::with_capacity(n);
            for (src, q) in block.iter_mut().enumerate() {
                let words = std::mem::take(q);
                if !words.is_empty() && src != dst {
                    loads.push((src, dst, words.len()));
                }
                row.push(words);
            }
            (loads, row)
        });
        let mut all_loads = Vec::new();
        let mut rows = Vec::with_capacity(n);
        for (loads, row) in per_dst {
            all_loads.extend(loads);
            rows.push(row);
        }
        let inboxes = Inboxes::from_rows(rows);
        // Canonical (src, dst) order — the historical serial walk's order —
        // so fingerprints and load traces never depend on the executor.
        all_loads.sort_unstable();
        let mut loads = LinkLoads::new();
        for (src, dst, words) in all_loads {
            loads.add(src, dst, words);
        }
        (inboxes, loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_runtime::ExecutorKind;

    fn seq() -> Executor {
        Executor::new(ExecutorKind::Sequential)
    }

    #[test]
    fn flush_counts_max_queue_as_rounds() {
        let mut net = Network::new(3);
        net.enqueue(0, 1, &[1, 2, 3]);
        net.enqueue(1, 2, &[4]);
        net.enqueue(2, 0, &[5, 6]);
        let (ib, loads) = net.flush(&seq());
        assert_eq!(loads.rounds(), 3);
        assert_eq!(loads.words(), 6);
        assert_eq!(ib.received(1, 0), &[1, 2, 3]);
        assert_eq!(ib.received(2, 1), &[4]);
        assert_eq!(ib.received(0, 2), &[5, 6]);
        // Queues are drained.
        let (_, loads2) = net.flush(&seq());
        assert_eq!(loads2.rounds(), 0);
    }

    #[test]
    fn self_messages_are_free() {
        let mut net = Network::new(2);
        net.enqueue(0, 0, &[7, 8, 9]);
        net.enqueue(0, 1, &[1]);
        let (ib, loads) = net.flush(&seq());
        assert_eq!(loads.rounds(), 1);
        assert_eq!(loads.words(), 1);
        assert_eq!(ib.received(0, 0), &[7, 8, 9]);
    }

    #[test]
    fn sharded_flush_matches_serial() {
        let fill = |net: &mut Network| {
            // A mix of hot links, self messages, and empty queues.
            for src in 0..7 {
                for dst in 0..7 {
                    if (src + 2 * dst) % 3 == 0 {
                        let words: Vec<Word> = (0..(src + dst) as u64 % 5)
                            .map(|w| w + 10 * src as u64)
                            .collect();
                        net.enqueue(src, dst, &words);
                    }
                }
            }
            net.enqueue(0, 1, &[99, 98, 97]);
        };
        let mut a = Network::new(7);
        fill(&mut a);
        let (ib_a, loads_a) = a.flush(&seq());
        let mut b = Network::new(7);
        fill(&mut b);
        let (ib_b, loads_b) = b.flush(&Executor::new(ExecutorKind::Parallel { threads: 3 }));
        assert_eq!(loads_a.rounds(), loads_b.rounds());
        assert_eq!(loads_a.words(), loads_b.words());
        let la: Vec<_> = loads_a.iter().collect();
        let lb: Vec<_> = loads_b.iter().collect();
        assert_eq!(la, lb, "load order must match the serial walk");
        for dst in 0..7 {
            for src in 0..7 {
                assert_eq!(ib_a.received(dst, src), ib_b.received(dst, src));
            }
        }
        // Parallel flush drains queues too.
        let (_, after) = b.flush(&seq());
        assert_eq!(after.rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enqueue_validates_indices() {
        let mut net = Network::new(2);
        net.enqueue(0, 5, &[1]);
    }
}
