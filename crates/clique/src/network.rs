//! Link-level execution: a thin shell over the pluggable transport.

use crate::inbox::Inboxes;
use crate::word::Word;
// The cost model (`LinkLoads`) lives in `cc_runtime` so that engine-driven
// and flush-driven accounting share one source of truth; this crate
// re-exports it from `lib.rs`.
use cc_runtime::LinkLoads;
use cc_transport::{RoundDelivery, Transport};
use std::sync::Arc;

/// The physical network: queued words per directed link, carried by a
/// pluggable [`Transport`] backend.
///
/// `flush` executes synchronous rounds until all queues drain; in each round
/// a link moves exactly one word, so the number of executed rounds equals
/// the maximum queue length. Self-addressed words (`src == dst`) are local
/// memory moves and cost nothing, matching the model (a node need not use
/// the network to talk to itself).
///
/// Where the traffic physically travels is the transport's business: the
/// in-memory backend keeps the historical destination-major sharded flush,
/// the channel backend moves frames through per-node thread queues, and the
/// socket backend ships them to worker processes. All are bit-identical in
/// deliveries, loads, and therefore rounds and pattern fingerprints.
#[derive(Debug)]
pub struct Network {
    n: usize,
    transport: Box<dyn Transport>,
}

impl Network {
    pub(crate) fn new(n: usize, transport: Box<dyn Transport>) -> Self {
        assert_eq!(transport.n(), n, "transport sized for a different clique");
        Self { n, transport }
    }

    pub(crate) fn enqueue(&mut self, src: usize, dst: usize, words: &[Word]) {
        assert!(
            src < self.n && dst < self.n,
            "node index out of range (n={})",
            self.n
        );
        self.transport.send(src, dst, words);
    }

    /// Queues a broadcast slab from `src` (delivered to every node, the
    /// sender included; charged on the `n - 1` outgoing links).
    pub(crate) fn enqueue_broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        assert!(src < self.n, "node index out of range (n={})", self.n);
        self.transport.broadcast(src, slab);
    }

    /// Executes the round barrier, returning the delivered unicast messages
    /// and the loads that determine the round cost.
    pub(crate) fn flush(&mut self) -> (Inboxes, LinkLoads) {
        let round = self.transport.finish_round();
        let rows = round.inboxes.into_iter().map(|d| d.unicast).collect();
        (Inboxes::from_rows(rows), round.loads)
    }

    /// Executes the round barrier, returning the full per-node deliveries
    /// (unicast and broadcast lanes) for primitives that ship slabs.
    pub(crate) fn flush_full(&mut self) -> RoundDelivery {
        self.transport.finish_round()
    }

    /// The transport carrying this network's traffic.
    pub(crate) fn transport_mut(&mut self) -> &mut dyn Transport {
        &mut *self.transport
    }

    /// Completed round barriers (the transport epoch).
    pub(crate) fn epochs(&self) -> u64 {
        self.transport.epoch()
    }

    /// Encoded payload bytes the orchestrating process shipped onto the
    /// fabric (see [`Transport::orchestrator_bytes`]).
    pub(crate) fn orchestrator_bytes(&self) -> u64 {
        self.transport.orchestrator_bytes()
    }

    /// Cumulative simulated network time (see [`Transport::sim_time_ns`]);
    /// `0` on an unconditioned fabric.
    pub(crate) fn sim_time_ns(&self) -> u64 {
        self.transport.sim_time_ns()
    }

    /// Simulated retransmissions performed so far (see
    /// [`Transport::net_retransmits`]).
    pub(crate) fn net_retransmits(&self) -> u64 {
        self.transport.net_retransmits()
    }

    /// Simulated node faults injected so far (see
    /// [`Transport::net_faults`]).
    pub(crate) fn net_faults(&self) -> u64 {
        self.transport.net_faults()
    }

    /// The backend's name, for diagnostics.
    pub(crate) fn transport_name(&self) -> &'static str {
        self.transport.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_runtime::{Executor, ExecutorKind};
    use cc_transport::{InMemoryTransport, TransportKind};

    fn net(n: usize) -> Network {
        Network::new(
            n,
            Box::new(InMemoryTransport::new(
                n,
                Executor::new(ExecutorKind::Sequential),
            )),
        )
    }

    #[test]
    fn flush_counts_max_queue_as_rounds() {
        let mut net = net(3);
        net.enqueue(0, 1, &[1, 2, 3]);
        net.enqueue(1, 2, &[4]);
        net.enqueue(2, 0, &[5, 6]);
        let (ib, loads) = net.flush();
        assert_eq!(loads.rounds(), 3);
        assert_eq!(loads.words(), 6);
        assert_eq!(ib.received(1, 0), &[1, 2, 3]);
        assert_eq!(ib.received(2, 1), &[4]);
        assert_eq!(ib.received(0, 2), &[5, 6]);
        // Queues are drained.
        let (_, loads2) = net.flush();
        assert_eq!(loads2.rounds(), 0);
        assert_eq!(net.epochs(), 2);
    }

    #[test]
    fn self_messages_are_free() {
        let mut net = net(2);
        net.enqueue(0, 0, &[7, 8, 9]);
        net.enqueue(0, 1, &[1]);
        let (ib, loads) = net.flush();
        assert_eq!(loads.rounds(), 1);
        assert_eq!(loads.words(), 1);
        assert_eq!(ib.received(0, 0), &[7, 8, 9]);
    }

    #[test]
    fn every_backend_matches_the_sequential_reference() {
        let fill = |net: &mut Network| {
            // A mix of hot links, self messages, empty queues, broadcasts.
            for src in 0..7 {
                for dst in 0..7 {
                    if (src + 2 * dst) % 3 == 0 {
                        let words: Vec<Word> = (0..(src + dst) as u64 % 5)
                            .map(|w| w + 10 * src as u64)
                            .collect();
                        net.enqueue(src, dst, &words);
                    }
                }
            }
            net.enqueue(0, 1, &[99, 98, 97]);
            net.enqueue_broadcast(4, vec![1, 2].into());
        };
        let mut reference = net(7);
        fill(&mut reference);
        let reference = reference.flush_full();
        let backends: Vec<Box<dyn Transport>> = vec![
            Box::new(InMemoryTransport::new(
                7,
                Executor::new(ExecutorKind::Parallel { threads: 3 }),
            )),
            TransportKind::Channel.build(7, Executor::default()),
            TransportKind::Socket { workers: 3 }.build(7, Executor::default()),
        ];
        for backend in backends {
            let name = backend.name();
            let mut n = Network::new(7, backend);
            fill(&mut n);
            assert_eq!(n.flush_full(), reference, "{name} diverged");
            // Backend drains its queues too.
            let (_, after) = n.flush();
            assert_eq!(after.rounds(), 0, "{name} left traffic queued");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enqueue_validates_indices() {
        let mut net = net(2);
        net.enqueue(0, 5, &[1]);
    }
}
