//! Per-node message inboxes produced by communication primitives.

use crate::word::{AsWords, Word, WordReader};

/// Messages delivered to every node by one communication step.
///
/// `Inboxes` is indexed by `(destination, source)`; the words from a given
/// source are in the order the source sent them. Algorithms normally decode
/// inbox contents with [`Inboxes::decode`] using statically known counts
/// (the communication patterns in this crate's clients are oblivious).
#[derive(Debug, Clone)]
pub struct Inboxes {
    n: usize,
    /// `data[dst][src]` = words received by `dst` from `src`.
    data: Vec<Vec<Vec<Word>>>,
}

impl Inboxes {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            data: vec![vec![Vec::new(); n]; n],
        }
    }

    pub(crate) fn push(&mut self, dst: usize, src: usize, words: impl IntoIterator<Item = Word>) {
        self.data[dst][src].extend(words);
    }

    /// Builds inboxes from per-destination rows (used by the sharded flush,
    /// where each worker assembles one destination's deliveries wholesale).
    pub(crate) fn from_rows(rows: Vec<Vec<Vec<Word>>>) -> Self {
        let n = rows.len();
        debug_assert!(rows.iter().all(|r| r.len() == n), "rows must be square");
        Self { n, data: rows }
    }

    /// Number of nodes in the clique this inbox set belongs to.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The words `dst` received from `src` (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn received(&self, dst: usize, src: usize) -> &[Word] {
        &self.data[dst][src]
    }

    /// Removes and returns the words `dst` received from `src`.
    #[must_use]
    pub fn take(&mut self, dst: usize, src: usize) -> Vec<Word> {
        std::mem::take(&mut self.data[dst][src])
    }

    /// Iterates over `(src, words)` pairs with non-empty payloads for `dst`.
    pub fn sources(&self, dst: usize) -> impl Iterator<Item = (usize, &[Word])> {
        self.data[dst]
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.is_empty())
            .map(|(s, w)| (s, w.as_slice()))
    }

    /// Total number of words delivered to `dst`.
    #[must_use]
    pub fn total_received(&self, dst: usize) -> usize {
        self.data[dst].iter().map(Vec::len).sum()
    }

    /// Decodes exactly `count` values of type `T` from what `dst` received
    /// from `src`.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not contain exactly `count` encoded values.
    #[must_use]
    pub fn decode<T: AsWords>(&self, dst: usize, src: usize, count: usize) -> Vec<T> {
        let words = self.received(dst, src);
        let mut r = WordReader::new(words);
        let out: Vec<T> = (0..count).map(|_| T::read_words(&mut r)).collect();
        assert!(
            r.is_exhausted(),
            "inbox ({dst} <- {src}): {} trailing words after decoding {count} values",
            r.remaining()
        );
        out
    }

    /// Decodes all values of a fixed-width type from what `dst` received from
    /// `src`, consuming the entire payload.
    #[must_use]
    pub fn decode_all<T: AsWords>(&self, dst: usize, src: usize) -> Vec<T> {
        let words = self.received(dst, src);
        let mut r = WordReader::new(words);
        let mut out = Vec::new();
        while !r.is_exhausted() {
            out.push(T::read_words(&mut r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_decode() {
        let mut ib = Inboxes::new(3);
        ib.push(1, 0, [5u64, 6, 7]);
        assert_eq!(ib.received(1, 0), &[5, 6, 7]);
        assert_eq!(ib.total_received(1), 3);
        assert_eq!(ib.total_received(0), 0);
        let vals: Vec<u64> = ib.decode(1, 0, 3);
        assert_eq!(vals, vec![5, 6, 7]);
        let all: Vec<u64> = ib.decode_all(1, 0);
        assert_eq!(all, vec![5, 6, 7]);
    }

    #[test]
    fn sources_skips_empty() {
        let mut ib = Inboxes::new(4);
        ib.push(2, 0, [1u64]);
        ib.push(2, 3, [9u64, 8]);
        let got: Vec<(usize, usize)> = ib.sources(2).map(|(s, w)| (s, w.len())).collect();
        assert_eq!(got, vec![(0, 1), (3, 2)]);
    }

    #[test]
    #[should_panic(expected = "trailing words")]
    fn decode_rejects_wrong_count() {
        let mut ib = Inboxes::new(2);
        ib.push(0, 1, [1u64, 2]);
        let _: Vec<u64> = ib.decode(0, 1, 1);
    }
}
