//! # cc-clique: a congested clique simulator
//!
//! This crate implements the **congested clique** model of distributed
//! computing: `n` nodes communicate in synchronous rounds over a complete
//! network, and in each round every ordered pair of nodes may exchange one
//! message of `O(log n)` bits (one [`Word`] in this implementation).
//!
//! The simulator is *faithful at the link level*: algorithms enqueue words on
//! directed links, and [`Clique`] executes synchronous rounds in which each
//! link drains at most one word. The reported round count of an algorithm is
//! the number of rounds actually executed, never an analytic formula.
//!
//! ## Primitives
//!
//! * [`Clique::exchange`] — direct link-level exchange (each message travels
//!   on its own `(src, dst)` link).
//! * [`Clique::route`] — balanced two-phase routing in the style of
//!   Lenzen (PODC 2013): messages are spread over intermediate relays so that
//!   any instance where each node sends and receives at most `n` words
//!   completes in `O(1)` rounds.
//! * [`Clique::broadcast`] / [`Clique::broadcast_vec`] — one-to-all
//!   broadcast of one word (or a word sequence) from every node.
//! * [`Clique::gossip`] — "learn everything": every node obtains the union of
//!   all contributed words in `O(total/n)` rounds.
//! * Reducers ([`Clique::sum_all`], [`Clique::or_all`], [`Clique::max_all`],
//!   [`Clique::min_all`]) — single-round aggregate + local fold.
//!
//! ## Execution backends
//!
//! Simulations run on a pluggable executor selected through
//! [`CliqueConfig::executor`]: [`ExecutorKind::Sequential`] (the default),
//! [`ExecutorKind::Parallel`] — a **persistent worker pool** built once at
//! clique construction, reused by every step, joined when the clique drops
//! — or [`ExecutorKind::Spawn`], the legacy scoped-threads-per-call
//! backend kept for ablation. All shard node-local computation and message
//! delivery via the [`cc_runtime`] engine while keeping results, round
//! counts, and pattern fingerprints bit-identical. [`Clique::exchange_par`]
//! / [`Clique::route_par`] / [`Clique::route_dynamic_par`] /
//! [`Clique::gossip_par`] accept `Fn + Sync` generators evaluated on the
//! backend, and [`Clique::run_programs`] drives per-node [`NodeProgram`]
//! state machines round by round. The `CC_EXECUTOR` environment variable
//! retargets every default-configured clique (how CI runs the suite on
//! each backend).
//!
//! ## Transport backends
//!
//! Orthogonally to the executor, [`CliqueConfig::transport`] selects the
//! **message fabric** every communication step travels through (see
//! [`TransportKind`]): the in-memory destination-major sharded flush (the
//! default), cross-thread channels with one inbox queue per node, or true
//! multi-process simulation over unix sockets (`cc-clique-node` worker
//! processes, length-prefixed frames, round-commit barrier). Deliveries,
//! rounds, words, pattern fingerprints, and barrier epochs
//! ([`Clique::transport_epochs`]) are bit-identical across fabrics; the
//! `CC_TRANSPORT` environment variable (`inmemory` / `channel` /
//! `socket[:workers]`) retargets every default-configured clique exactly
//! like `CC_EXECUTOR`, and an unrecognised value is reported once instead
//! of being silently swallowed.
//!
//! ## Network conditions
//!
//! [`CliqueConfig::netsim`] layers a seeded, fully deterministic
//! condition model (`cc-netsim`) over whichever fabric is selected:
//! per-link latency and jitter, stragglers, message loss with bounded
//! retransmission, and node crash/restart fault plans. Conditioning is
//! **observer-plus-recovery only** — results, rounds, words, and pattern
//! fingerprints stay bit-identical to an unconditioned run — while a new
//! accounting column, [`Stats::sim_time_ns`] / [`Clique::sim_time_ns`],
//! reports how long the run would have taken on the modelled network. The
//! `CC_NETSIM` environment variable (`off` / `lan` / `wan` / `lossy` /
//! `flaky-node`, optionally `:<seed>`) retargets every default-configured
//! clique, exactly like `CC_TRANSPORT`.
//!
//! ## Example
//!
//! ```rust
//! use cc_clique::Clique;
//!
//! let mut clique = Clique::new(8);
//! // Every node broadcasts its own id; afterwards everyone knows all ids.
//! let ids = clique.broadcast(|v| v as u64);
//! assert_eq!(ids, (0..8).collect::<Vec<u64>>());
//! assert_eq!(clique.rounds(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clique;
mod inbox;
mod network;
mod stats;
mod word;

pub use crate::clique::{Clique, CliqueConfig, Mode, RelayPolicy};
pub use crate::inbox::Inboxes;
pub use crate::stats::{PhaseStats, Stats};
pub use crate::word::{
    pack_pair, read_exact, unpack_pair, write_all, AsWords, Word, WordReader, WordWriter,
};
// Runtime surface, re-exported so algorithm crates need no direct
// `cc_runtime` dependency to opt in. `LinkLoads` — the link-level cost
// model — lives in `cc_runtime` so engine- and flush-driven accounting
// share one definition.
pub use cc_runtime::{
    Control, Executor, ExecutorKind, LinkLoads, NodeProgram, RoundCtx, WireProgram,
};
// Transport surface, re-exported for the same reason: `CliqueConfig`
// selects the fabric by `TransportKind`, and callers building custom
// fabrics implement `Transport`.
pub use cc_transport::{Transport, TransportKind};
// Network-condition surface: `CliqueConfig` selects the profile by
// `NetsimConfig`, so algorithm crates need no direct `cc_netsim`
// dependency to opt in.
pub use cc_netsim::{NetsimConfig, NetsimProfile};
