//! Cost-model contract tests: every primitive's round charge must equal
//! the model-defined cost on exactly-characterised instances. These pin
//! down the accounting rules the rest of the workspace builds on.

use cc_clique::{Clique, CliqueConfig, Mode};

#[test]
fn broadcast_is_exactly_one_round() {
    for n in [2, 5, 33] {
        let mut c = Clique::new(n);
        c.broadcast(|v| v as u64);
        assert_eq!(c.rounds(), 1, "n={n}");
        assert_eq!(c.stats().words(), (n * (n - 1)) as u64);
    }
}

#[test]
fn broadcast_vec_costs_longest_sequence() {
    let mut c = Clique::new(6);
    let seqs = c.broadcast_vec(|v| vec![v as u64; v]);
    assert_eq!(c.rounds(), 5, "max sequence length");
    assert_eq!(seqs[3], vec![3, 3, 3]);
    // Empty sequences cost nothing.
    let mut c2 = Clique::new(6);
    c2.broadcast_vec(|_| Vec::new());
    assert_eq!(c2.rounds(), 0);
}

#[test]
fn exchange_charges_per_link_queues() {
    // Two messages on the same link queue sequentially; different links in
    // parallel.
    let mut c = Clique::new(4);
    c.exchange(|v| match v {
        0 => vec![(1, vec![1, 2]), (2, vec![3])],
        3 => vec![(2, vec![4])],
        _ => vec![],
    });
    assert_eq!(c.rounds(), 2, "longest link queue is 0→1 with 2 words");
    assert_eq!(c.stats().words(), 4);
}

#[test]
fn self_messages_are_free_everywhere() {
    let mut c = Clique::new(4);
    let inbox = c.exchange(|v| vec![(v, vec![7, 8, 9])]);
    assert_eq!(c.rounds(), 0, "local memory moves cost nothing");
    assert_eq!(inbox.received(2, 2), &[7, 8, 9]);
}

#[test]
fn dynamic_routing_charges_headers_per_message() {
    let n = 8;
    // 16 single-word messages per node: oblivious pays ~16/n·2 phases,
    // dynamic pays double (1 header word per message).
    let pattern = |v: usize| -> Vec<(usize, Vec<u64>)> {
        (0..16).map(|j| ((v + j + 1) % n, vec![j as u64])).collect()
    };
    let mut oblivious = Clique::new(n);
    oblivious.route(pattern);
    let mut dynamic = Clique::new(n);
    dynamic.route_dynamic(pattern);
    assert_eq!(
        dynamic.stats().words(),
        2 * oblivious.stats().words(),
        "headers double the traffic"
    );
    assert!(dynamic.rounds() >= oblivious.rounds());
}

#[test]
fn gossip_cost_tracks_total_volume() {
    // Doubling everyone's contribution should roughly double gossip cost.
    let run = |k: usize| {
        let mut c = Clique::new(16);
        c.gossip(|v| vec![v as u64; k]);
        c.rounds()
    };
    let (r8, r32) = (run(8), run(32));
    assert!(
        r32 >= 3 * r8 && r32 <= 6 * r8,
        "4x volume should be ~4x rounds: {r8} -> {r32}"
    );
}

#[test]
fn reducers_share_one_broadcast_each() {
    let mut c = Clique::new(10);
    let s = c.sum_all(|v| v as i64);
    let m = c.max_all(|v| v as i64);
    assert_eq!((s, m), (45, 9));
    assert_eq!(c.rounds(), 2, "one broadcast per reduce");
}

#[test]
fn phase_totals_are_consistent_with_global_totals() {
    let mut c = Clique::new(8);
    c.phase("a", |c| {
        c.broadcast(|v| v as u64);
    });
    c.phase("b", |c| {
        c.route(|v| vec![((v + 1) % 8, vec![1, 2])]);
    });
    let a = c.stats().phase("a").unwrap();
    let b = c.stats().phase("b").unwrap();
    assert_eq!(a.rounds + b.rounds, c.rounds());
    assert_eq!(a.words + b.words, c.stats().words());
}

#[test]
fn broadcast_mode_allows_broadcasts_and_reducers() {
    let cfg = CliqueConfig {
        mode: Mode::Broadcast,
        ..CliqueConfig::default()
    };
    let mut c = Clique::with_config(6, cfg);
    let words = c.broadcast(|v| (v * 2) as u64);
    assert_eq!(words[3], 6);
    assert_eq!(c.sum_all(|v| v as i64), 15);
    assert!(c.or_all(|v| v == 5));
}
