//! Stress tests for the balanced router and the gossip primitive under
//! adversarially skewed load patterns: the routing guarantee the paper
//! borrows from Lenzen — `O(⌈L/n⌉)` rounds for per-node loads `L` — must
//! hold (up to small constants) regardless of how the load is shaped.

use cc_clique::{Clique, CliqueConfig, RelayPolicy};

/// Ideal rounds for a routing instance: `max(out, in) / n`, the
/// information-theoretic floor.
fn ideal(per_node_load: usize, n: usize) -> u64 {
    per_node_load.div_ceil(n) as u64
}

#[test]
fn single_hot_destination() {
    // Every node sends its full budget to ONE destination: in-load n·L at
    // the target. Rounds must track the receiver bottleneck, not explode.
    let n = 64;
    let per_src = 2 * n;
    let mut c = Clique::new(n);
    c.route(|v| {
        if v == 0 {
            vec![]
        } else {
            vec![(0, vec![v as u64; per_src])]
        }
    });
    let floor = ideal((n - 1) * per_src, n);
    assert!(
        c.rounds() <= 3 * floor + 8,
        "hot destination: {} rounds vs floor {floor}",
        c.rounds()
    );
}

#[test]
fn single_hot_source() {
    let n = 64;
    let mut c = Clique::new(n);
    c.route(|v| {
        if v != 0 {
            return vec![];
        }
        (1..n)
            .map(|u| (u, vec![u as u64; 2 * n / (n - 1) + 1]))
            .collect()
    });
    assert!(
        c.rounds() <= 16,
        "hot source should still be ~O(1): {}",
        c.rounds()
    );
}

#[test]
fn permutation_pattern_is_cheap() {
    // One word per node to a permuted destination: the lightest possible
    // routing instance; must be a handful of rounds.
    let n = 128;
    let mut c = Clique::new(n);
    c.route(|v| vec![((v * 37 + 11) % n, vec![v as u64])]);
    assert!(
        c.rounds() <= 6,
        "permutation routing took {} rounds",
        c.rounds()
    );
}

#[test]
fn block_scatter_matches_theory() {
    // The 3D algorithm's shape: each node sends n/p words to p² peers.
    let n = 125;
    let p = 5;
    let chunk = n / p;
    let mut c = Clique::new(n);
    c.route(|v| {
        (0..p * p)
            .map(|k| ((v + k * p + 1) % n, vec![0u64; chunk]))
            .collect()
    });
    let floor = ideal(p * p * chunk, n);
    assert!(
        c.rounds() <= 3 * floor + 8,
        "block scatter: {} rounds vs floor {floor}",
        c.rounds()
    );
}

#[test]
fn two_choice_beats_single_hash_on_balanced_loads() {
    let n = 64;
    let run = |policy: RelayPolicy| {
        let cfg = CliqueConfig {
            relay_policy: policy,
            ..CliqueConfig::default()
        };
        let mut c = Clique::with_config(n, cfg);
        c.route(|v| {
            (0..n)
                .filter(|&u| u != v)
                .map(|u| (u, vec![v as u64; 2]))
                .collect()
        });
        c.rounds()
    };
    assert!(run(RelayPolicy::TwoChoice) <= run(RelayPolicy::SingleHash));
}

#[test]
fn gossip_with_empty_and_uneven_contributions() {
    let n = 32;
    let mut c = Clique::new(n);
    let all = c.gossip(|v| {
        if v % 3 == 0 {
            vec![v as u64; v + 1]
        } else {
            vec![]
        }
    });
    let expect: usize = (0..n).filter(|v| v % 3 == 0).map(|v| v + 1).sum();
    assert_eq!(all.len(), expect);
    // Also the degenerate all-empty case.
    let mut c2 = Clique::new(n);
    let nothing = c2.gossip(|_| vec![]);
    assert!(nothing.is_empty());
    assert_eq!(c2.rounds(), 0);
}

#[test]
fn route_preserves_per_source_order() {
    let n = 16;
    let mut c = Clique::new(n);
    let inbox = c.route(|v| vec![((v + 1) % n, (0..10).map(|j| (v * 100 + j) as u64).collect())]);
    for v in 0..n {
        let got = inbox.received((v + 1) % n, v);
        let expect: Vec<u64> = (0..10).map(|j| (v * 100 + j) as u64).collect();
        assert_eq!(got, expect.as_slice(), "order from source {v}");
    }
}

#[test]
fn repeated_routes_accumulate_rounds_monotonically() {
    let n = 16;
    let mut c = Clique::new(n);
    let mut last = 0;
    for step in 0..5 {
        c.route(|v| vec![((v + step + 1) % n, vec![step as u64])]);
        assert!(c.rounds() > last, "rounds must strictly grow per step");
        last = c.rounds();
    }
}
